"""Sign-magnitude bit-serial multiplier (paper Fig. 8, step 2).

One SMM multiplies a single weight bit with a full-precision two's
complement activation through an AND gate; the weight's sign (from the
ZCIP) and the activation's sign jointly determine the partial product's
sign.  Because the activation is kept in two's complement, the partial
product is simply ``+activation`` or ``-activation`` gated by the bit.
"""

from __future__ import annotations

import numpy as np


def smm_partial_products(
    activations: np.ndarray,
    weight_bits: np.ndarray,
    weight_signs: np.ndarray,
) -> np.ndarray:
    """Per-lane partial products of one bit column.

    Parameters
    ----------
    activations:
        Integer activations (two's complement values), shape ``(..., G)``.
    weight_bits:
        0/1 bits of the streamed column, broadcastable to activations.
    weight_signs:
        0/1 sign bits of the grouped weights (1 = negative).

    Returns
    -------
    numpy.ndarray
        ``bit * (sign ? -activation : activation)`` per lane, int64.
    """
    activations = np.asarray(activations, dtype=np.int64)
    bits = np.asarray(weight_bits, dtype=np.int64)
    signs = np.asarray(weight_signs, dtype=np.int64)
    signed_acts = np.where(signs.astype(bool), -activations, activations)
    return bits * signed_acts


def smm_column_sum(
    activations: np.ndarray,
    weight_bits: np.ndarray,
    weight_signs: np.ndarray,
) -> np.ndarray:
    """Step 3 of Fig. 8: accumulate all lane partial products of a column."""
    return smm_partial_products(
        activations, weight_bits, weight_signs).sum(axis=-1)


def smm_plane_gemm(
    activations: np.ndarray,
    plane_bits: np.ndarray,
    plane_signs: np.ndarray,
) -> np.ndarray:
    """Every SMM of the array against one bit plane, as a single GEMM.

    Where :func:`smm_column_sum` evaluates one column of one group, this
    folds the whole plane -- all kernels, all groups -- into one integer
    matmul: ``bit * (sign ? -act : act)`` summed over the group lanes
    *and* the groups is exactly ``acts @ (bits * (1 - 2 * signs)).T``.

    Parameters
    ----------
    activations:
        ``(N, n_groups, G)`` integer activation contexts.
    plane_bits:
        ``(K, n_groups, G)`` 0/1 bits of one magnitude plane.
    plane_signs:
        ``(K, n_groups, G)`` 0/1 sign bits of the grouped weights.

    Returns
    -------
    numpy.ndarray
        ``(N, K)`` int64 partial sums of the plane, before the plane's
        single shift is applied.
    """
    acts = np.asarray(activations, dtype=np.int64)
    bits = np.asarray(plane_bits, dtype=np.int8)
    signs = np.asarray(plane_signs, dtype=np.int8)
    signed_bits = bits * (1 - 2 * signs)
    lhs = acts.reshape(acts.shape[0], -1)
    rhs = signed_bits.reshape(signed_bits.shape[0], -1)
    # Every partial product is an exact float64 integer and the row sum
    # is bounded by max|act| * C, so whenever that bound stays below
    # 2^53 the BLAS dgemm path is bit-identical to the int64 matmul --
    # and an order of magnitude faster.  Pathological activations fall
    # back to the exact (modular, like the reference accumulator) int64
    # matmul.
    peak = int(np.abs(lhs).max(initial=0))
    if peak <= (1 << 53) // max(lhs.shape[1], 1):
        return (lhs.astype(np.float64) @ rhs.T.astype(np.float64)).astype(
            np.int64)
    return lhs @ rhs.astype(np.int64).T
