"""Sign-magnitude bit-serial multiplier (paper Fig. 8, step 2).

One SMM multiplies a single weight bit with a full-precision two's
complement activation through an AND gate; the weight's sign (from the
ZCIP) and the activation's sign jointly determine the partial product's
sign.  Because the activation is kept in two's complement, the partial
product is simply ``+activation`` or ``-activation`` gated by the bit.
"""

from __future__ import annotations

import numpy as np


def smm_partial_products(
    activations: np.ndarray,
    weight_bits: np.ndarray,
    weight_signs: np.ndarray,
) -> np.ndarray:
    """Per-lane partial products of one bit column.

    Parameters
    ----------
    activations:
        Integer activations (two's complement values), shape ``(..., G)``.
    weight_bits:
        0/1 bits of the streamed column, broadcastable to activations.
    weight_signs:
        0/1 sign bits of the grouped weights (1 = negative).

    Returns
    -------
    numpy.ndarray
        ``bit * (sign ? -activation : activation)`` per lane, int64.
    """
    activations = np.asarray(activations, dtype=np.int64)
    bits = np.asarray(weight_bits, dtype=np.int64)
    signs = np.asarray(weight_signs, dtype=np.int64)
    signed_acts = np.where(signs.astype(bool), -activations, activations)
    return bits * signed_acts


def smm_column_sum(
    activations: np.ndarray,
    weight_bits: np.ndarray,
    weight_signs: np.ndarray,
) -> np.ndarray:
    """Step 3 of Fig. 8: accumulate all lane partial products of a column."""
    return smm_partial_products(
        activations, weight_bits, weight_signs).sum(axis=-1)
