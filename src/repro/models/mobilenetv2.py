"""MobileNetV2 (Sandler et al. 2018) on the NumPy substrate.

Conv layers are named ``L.0`` .. ``L.51`` in network order, matching the
paper's Fig. 6(b)/(f) which flips ``L.47``, ``L.48``, ``L.50``, ``L.51``
and ``fc`` (together ~70% of the weights):

- ``L.0``      stem 3x3 conv
- ``L.1..L.2`` first inverted residual (expand ratio 1: dw + pw)
- then 16 blocks of (pw-expand, dw, pw-project): ``L.3`` .. ``L.50``
- ``L.51``     final 1x1 conv (1280 channels)
- ``fc``       classifier
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Linear,
)
from repro.nn.model import Model

#: (expansion t, output channels c, repeats n, stride s) per stage.
INVERTED_RESIDUAL_CFG = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)

PRESETS = {
    "paper": {"width": 1.0, "input_size": 224, "num_classes": 1000},
    "tiny": {"width": 0.25, "input_size": 32, "num_classes": 10},
}


def _scaled(channels: int, width: float) -> int:
    return max(8, int(round(channels * width)))


class InvertedResidual:
    def __init__(
        self,
        model: "MobileNetV2",
        in_ch: int,
        out_ch: int,
        stride: int,
        expand: int,
    ) -> None:
        self.stride = stride
        self.use_residual = stride == 1 and in_ch == out_ch
        hidden = in_ch * expand
        self.layers: list[tuple[object, BatchNorm2d | None, bool]] = []
        if expand != 1:
            conv = model.add_conv(Conv2d(
                in_ch, hidden, 1, 1, 0, bias=False,
                seed=(model.name, model.next_index(), "pw-expand")))
            self.layers.append((conv, model.make_bn(hidden), True))
        dw = model.add_conv(DepthwiseConv2d(
            hidden, 3, stride, 1, bias=False,
            seed=(model.name, model.next_index(), "dw")))
        self.layers.append((dw, model.make_bn(hidden), True))
        pw = model.add_conv(Conv2d(
            hidden, out_ch, 1, 1, 0, bias=False,
            seed=(model.name, model.next_index(), "pw-project")))
        self.layers.append((pw, model.make_bn(out_ch), False))

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for conv, bn, activated in self.layers:
            out = conv.forward(out)
            if bn is not None:
                out = bn.forward(out)
            if activated:
                out = F.relu6(out)
        if self.use_residual:
            out = out + x
        return out


class MobileNetV2(Model):
    def __init__(self, preset: str = "paper") -> None:
        super().__init__("mobilenetv2")
        if preset not in PRESETS:
            raise ValueError(f"unknown preset {preset!r}")
        cfg = PRESETS[preset]
        self.preset = preset
        self.input_size = cfg["input_size"]
        width = cfg["width"]
        self._conv_index = 0
        self._pending_index: int | None = None
        self._bn_count = 0

        stem_ch = _scaled(32, width)
        self.stem = self.add_conv(Conv2d(
            3, stem_ch, 3, 2, 1, bias=False,
            seed=(self.name, self.next_index(), "stem")))
        self.stem_bn = self.make_bn(stem_ch)

        self.blocks: list[InvertedResidual] = []
        in_ch = stem_ch
        for t, c, n, s in INVERTED_RESIDUAL_CFG:
            out_ch = _scaled(c, width)
            for i in range(n):
                stride = s if i == 0 else 1
                self.blocks.append(
                    InvertedResidual(self, in_ch, out_ch, stride, t))
                in_ch = out_ch

        head_ch = _scaled(1280, width)
        self.head = self.add_conv(Conv2d(
            in_ch, head_ch, 1, 1, 0, bias=False,
            seed=(self.name, self.next_index(), "head")))
        self.head_bn = self.make_bn(head_ch)
        self.fc = self.add("fc", Linear(
            head_ch, cfg["num_classes"], seed=(self.name, "fc")))

    # -- registry helpers used during construction ----------------------
    def next_index(self) -> int:
        """Reserve the next ``L.N`` name for the conv being constructed."""
        index = self._conv_index
        self._conv_index += 1
        self._pending_index = index
        return index

    def add_conv(self, conv: object) -> object:
        if self._pending_index is None:
            raise RuntimeError("call next_index() before add_conv()")
        name = f"L.{self._pending_index}"
        self._pending_index = None
        return self.add(name, conv)

    def make_bn(self, channels: int) -> BatchNorm2d:
        self._bn_count += 1
        return BatchNorm2d(channels, seed=(self.name, "bn", self._bn_count))

    @property
    def num_conv_layers(self) -> int:
        return self._conv_index

    # -- inference -------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        out = F.relu6(self.stem_bn.forward(self.stem.forward(x)))
        for block in self.blocks:
            out = block.forward(out)
        out = F.relu6(self.head_bn.forward(self.head.forward(out)))
        out = F.global_avg_pool2d(out)
        return self.fc.forward(out)

    def sample_inputs(self, batch: int, seed: object = 0) -> np.ndarray:
        from repro.utils.rng import seeded_rng

        rng = seeded_rng(self.name, "inputs", seed)
        size = self.input_size
        return rng.normal(0, 1, (batch, 3, size, size)).astype(np.float32)


def build_mobilenetv2(preset: str = "paper") -> MobileNetV2:
    return MobileNetV2(preset)
