"""The paper's four benchmark networks, built on the NumPy substrate.

Each builder accepts a ``preset``:

- ``"paper"`` -- the exact layer dimensions of the published networks
  (ResNet18 / MobileNetV2 at 224x224, CNN-LSTM denoiser, BERT-Base).
  Use for weight-statistics experiments (sparsity, compression), which
  never run inference.
- ``"tiny"`` -- same topology at reduced width/depth/resolution.  Use for
  inference-based experiments (Bit-Flip sensitivity, greedy search),
  where the paper's full networks would be needlessly slow in NumPy.
"""

from repro.models.bert import build_bert_base
from repro.models.cnn_lstm import build_cnn_lstm
from repro.models.fidelity import (
    f1_proxy,
    pesq_proxy,
    top1_agreement,
)
from repro.models.mobilenetv2 import build_mobilenetv2
from repro.models.resnet18 import build_resnet18

BUILDERS = {
    "resnet18": build_resnet18,
    "mobilenetv2": build_mobilenetv2,
    "cnn_lstm": build_cnn_lstm,
    "bert_base": build_bert_base,
}

__all__ = [
    "BUILDERS",
    "build_bert_base",
    "build_cnn_lstm",
    "build_mobilenetv2",
    "build_resnet18",
    "f1_proxy",
    "pesq_proxy",
    "top1_agreement",
]
