"""ResNet18 (He et al. 2015) on the NumPy substrate.

Layer naming mirrors the paper's Fig. 6(a)/(e): ``conv1``,
``layer{1..4}.{0,1}.conv{1,2}``, downsample convs, and ``fc``.  The
paper's Bit-Flip study targets ``L.4.0``, ``L.4.1`` and ``fc`` which
together hold ~70% of the network weights.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import BatchNorm2d, Conv2d, Linear, MaxPool2d, ReLU
from repro.nn.model import Model

#: Channel plan of the four stages.
STAGE_CHANNELS = (64, 128, 256, 512)

PRESETS = {
    "paper": {"width": 1.0, "input_size": 224, "num_classes": 1000},
    "tiny": {"width": 0.25, "input_size": 32, "num_classes": 10},
}


class BasicBlock:
    """Two 3x3 convs with identity (or 1x1 projection) shortcut."""

    def __init__(
        self,
        model: Model,
        prefix: str,
        in_ch: int,
        out_ch: int,
        stride: int,
    ) -> None:
        seed = (model.name, prefix)
        self.conv1 = model.add(
            f"{prefix}.conv1",
            Conv2d(in_ch, out_ch, 3, stride, 1, bias=False,
                   seed=seed + ("conv1",)))
        self.bn1 = BatchNorm2d(out_ch, seed=seed + ("bn1",))
        self.conv2 = model.add(
            f"{prefix}.conv2",
            Conv2d(out_ch, out_ch, 3, 1, 1, bias=False,
                   seed=seed + ("conv2",)))
        self.bn2 = BatchNorm2d(out_ch, seed=seed + ("bn2",))
        self.downsample = None
        if stride != 1 or in_ch != out_ch:
            self.downsample = model.add(
                f"{prefix}.downsample",
                Conv2d(in_ch, out_ch, 1, stride, 0, bias=False,
                       seed=seed + ("down",)))
            self.down_bn = BatchNorm2d(out_ch, seed=seed + ("down_bn",))

    def forward(self, x: np.ndarray) -> np.ndarray:
        identity = x
        out = F.relu(self.bn1.forward(self.conv1.forward(x)))
        out = self.bn2.forward(self.conv2.forward(out))
        if self.downsample is not None:
            identity = self.down_bn.forward(self.downsample.forward(x))
        return F.relu(out + identity)


class ResNet18(Model):
    def __init__(self, preset: str = "paper") -> None:
        super().__init__("resnet18")
        if preset not in PRESETS:
            raise ValueError(f"unknown preset {preset!r}")
        cfg = PRESETS[preset]
        self.preset = preset
        self.input_size = cfg["input_size"]
        width = cfg["width"]
        channels = [max(8, int(c * width)) for c in STAGE_CHANNELS]

        self.conv1 = self.add(
            "conv1",
            Conv2d(3, channels[0], 7, 2, 3, bias=False,
                   seed=(self.name, "conv1")))
        self.bn1 = BatchNorm2d(channels[0], seed=(self.name, "bn1"))
        self.maxpool = MaxPool2d(3, 2, 1)
        self.relu = ReLU()

        self.blocks: list[BasicBlock] = []
        in_ch = channels[0]
        for stage, out_ch in enumerate(channels, start=1):
            for block in range(2):
                stride = 2 if (stage > 1 and block == 0) else 1
                self.blocks.append(
                    BasicBlock(self, f"layer{stage}.{block}", in_ch, out_ch,
                               stride))
                in_ch = out_ch

        self.fc = self.add(
            "fc",
            Linear(in_ch, cfg["num_classes"], seed=(self.name, "fc")))

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.relu.forward(self.bn1.forward(self.conv1.forward(x)))
        out = self.maxpool.forward(out)
        for block in self.blocks:
            out = block.forward(out)
        out = F.global_avg_pool2d(out)
        return self.fc.forward(out)

    def sample_inputs(self, batch: int, seed: object = 0) -> np.ndarray:
        from repro.utils.rng import seeded_rng

        rng = seeded_rng(self.name, "inputs", seed)
        size = self.input_size
        return rng.normal(0, 1, (batch, 3, size, size)).astype(np.float32)


def build_resnet18(preset: str = "paper") -> ResNet18:
    return ResNet18(preset)
