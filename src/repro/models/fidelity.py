"""Data-free fidelity proxies for the Bit-Flip accuracy axes.

The paper measures top-1 accuracy (ResNet18, MobileNetV2 on ImageNet),
PESQ (CNN-LSTM on audio), and F1 (BERT-Base on QA).  Those datasets are
unavailable offline, and what the Bit-Flip experiments actually quantify
is *degradation relative to the untouched Int8 model*.  We therefore
measure output fidelity of the flipped model against the unmodified
model on synthetic calibration inputs (substitution documented in
DESIGN.md §2):

- classification: top-1 agreement of the logits' argmax;
- audio: an SNR-derived PESQ-shaped score in [1.0, 4.5];
- QA: token-level span F1 between predicted and reference spans.

All three proxies equal their maximum when the flipped model matches the
reference exactly, and decrease monotonically with output error, so the
greedy search and Pareto sweeps behave as in the paper.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.model import Model

#: PESQ scale bounds (ITU-T P.862).
PESQ_MIN, PESQ_MAX = 1.0, 4.5


def top1_agreement(logits: np.ndarray, reference: np.ndarray) -> float:
    """Fraction of samples whose argmax matches the reference model's."""
    if logits.shape != reference.shape:
        raise ValueError(f"shape mismatch {logits.shape} vs {reference.shape}")
    return float(
        (logits.argmax(axis=-1) == reference.argmax(axis=-1)).mean())


def pesq_proxy(output: np.ndarray, reference: np.ndarray) -> float:
    """PESQ-shaped score from the SNR of ``output`` against ``reference``.

    Maps signal-to-noise ratio (dB) through a logistic onto the PESQ
    scale [1.0, 4.5]; identical outputs score 4.5.  The logistic midpoint
    (12 dB) and slope (6 dB) follow published PESQ-vs-SNR fits for
    speech enhancement.
    """
    if output.shape != reference.shape:
        raise ValueError(f"shape mismatch {output.shape} vs {reference.shape}")
    noise_power = float(np.mean((output - reference) ** 2))
    if noise_power == 0.0:
        return PESQ_MAX
    signal_power = float(np.mean(reference ** 2)) + 1e-12
    snr_db = 10.0 * np.log10(signal_power / noise_power)
    logistic = 1.0 / (1.0 + np.exp(-(snr_db - 12.0) / 6.0))
    return PESQ_MIN + (PESQ_MAX - PESQ_MIN) * float(logistic)


def f1_proxy(span_logits: np.ndarray, reference: np.ndarray) -> float:
    """Mean token-level F1 between predicted spans of two QA models.

    ``span_logits`` is ``(batch, seq, 2)`` (start/end).  Each model
    predicts the span ``[argmax(start), argmax(end)]`` (clamped so the
    end is not before the start), and F1 is token overlap, the SQuAD
    metric.
    """
    if span_logits.shape != reference.shape:
        raise ValueError(
            f"shape mismatch {span_logits.shape} vs {reference.shape}")

    def spans(logits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        start = logits[..., 0].argmax(axis=-1)
        end = logits[..., 1].argmax(axis=-1)
        return start, np.maximum(start, end)

    s_a, e_a = spans(span_logits)
    s_b, e_b = spans(reference)
    scores = []
    for sa, ea, sb, eb in zip(s_a, e_a, s_b, e_b):
        set_a = set(range(int(sa), int(ea) + 1))
        set_b = set(range(int(sb), int(eb) + 1))
        overlap = len(set_a & set_b)
        if overlap == 0:
            scores.append(0.0)
            continue
        precision = overlap / len(set_a)
        recall = overlap / len(set_b)
        scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(scores))


#: Per-network proxy selection, matching the paper's metric per benchmark.
METRICS: dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "resnet18": top1_agreement,
    "mobilenetv2": top1_agreement,
    "cnn_lstm": pesq_proxy,
    "bert_base": f1_proxy,
}


def make_evaluator(
    model: Model,
    inputs: np.ndarray,
    metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
) -> Callable[[dict[str, np.ndarray]], float]:
    """Build an ``evaluate(weights) -> score`` callback for the search.

    Captures the unmodified model's outputs as the reference, then for
    every candidate weight set: installs it, runs inference, scores
    against the reference, and restores the original weights.
    """
    if metric is None:
        metric = METRICS[model.name]
    original = model.weights_int8()
    reference = model.forward(inputs)

    def evaluate(weights: dict[str, np.ndarray]) -> float:
        model.set_weights_int8(weights)
        try:
            outputs = model.forward(inputs)
        finally:
            model.set_weights_int8(original)
        return metric(outputs, reference)

    return evaluate
