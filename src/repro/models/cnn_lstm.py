"""CNN-LSTM audio denoiser (the paper's in-house NXP benchmark).

The published model is private; the paper describes it only as a
CNN-LSTM for audio denoising whose two LSTM layers hold ~80% of the
weights (Fig. 6(c)/(g)).  We reconstruct the canonical architecture for
that task: a small conv front-end over log-spectrogram frames, two
stacked LSTM layers, and a linear mask decoder per frame.  Layer names
follow the paper: ``conv.0``, ``conv.1``, ``LSTM.0``, ``LSTM.1``, ``fc``.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Conv2d, Linear
from repro.nn.lstm import LSTM
from repro.nn.model import Model

PRESETS = {
    # 257-bin spectrogram (512-point FFT), hidden 512: LSTM share ~84%.
    "paper": {"bins": 257, "conv_ch": 64, "hidden": 512, "frames": 16},
    "tiny": {"bins": 33, "conv_ch": 16, "hidden": 64, "frames": 8},
}


class CnnLstm(Model):
    """Spectrogram in ``(batch, time, bins)`` -> denoising mask, same shape.

    The conv front-end is a pair of temporal (1-D over frames) convs
    with the spectral bins as channels -- the canonical structure for
    frame-wise speech enhancement.
    """

    def __init__(self, preset: str = "paper") -> None:
        super().__init__("cnn_lstm")
        if preset not in PRESETS:
            raise ValueError(f"unknown preset {preset!r}")
        cfg = PRESETS[preset]
        self.preset = preset
        self.bins = cfg["bins"]
        self.frames = cfg["frames"]
        conv_ch = cfg["conv_ch"]
        hidden = cfg["hidden"]

        self.conv0 = self.add("conv.0", Conv2d(
            self.bins, conv_ch, (1, 3), 1, (0, 1),
            seed=(self.name, "conv.0")))
        self.conv1 = self.add("conv.1", Conv2d(
            conv_ch, self.bins, (1, 3), 1, (0, 1),
            seed=(self.name, "conv.1")))
        self.lstm = LSTM(self.bins, hidden, num_layers=2, seed=(self.name,))
        self.add("LSTM.0", self.lstm.layers[0])
        self.add("LSTM.1", self.lstm.layers[1])
        self.fc = self.add("fc", Linear(
            hidden, self.bins, seed=(self.name, "fc")))

    def forward(self, x: np.ndarray) -> np.ndarray:
        # (batch, time, bins) -> NCHW with bins as channels, time as W.
        img = x.transpose(0, 2, 1)[:, :, None, :]
        img = F.relu(self.conv0.forward(img))
        img = self.conv1.forward(img)
        features = img[:, :, 0, :].transpose(0, 2, 1)  # (batch, time, bins)
        hidden = self.lstm.forward(features)
        mask = F.sigmoid(self.fc.forward(hidden))
        return x * mask

    def sample_inputs(self, batch: int, seed: object = 0) -> np.ndarray:
        """Synthetic noisy log-spectrograms."""
        from repro.utils.rng import seeded_rng

        rng = seeded_rng(self.name, "inputs", seed)
        clean = np.abs(rng.normal(0, 1.0, (batch, self.frames, self.bins)))
        noise = np.abs(rng.normal(0, 0.3, (batch, self.frames, self.bins)))
        return (clean + noise).astype(np.float32)


def build_cnn_lstm(preset: str = "paper") -> CnnLstm:
    return CnnLstm(preset)
