"""BERT-Base encoder for extractive QA (the paper's F1 benchmark).

Layer naming mirrors HuggingFace/the paper: every quantized sub-layer of
encoder block ``N`` registers under ``bert.encoder.layer.N.<sublayer>``;
the per-block aggregate name ``Layer.N`` used in Fig. 6(d)/(h) is
available through :meth:`BertBase.block_layer_names`.

The QA head produces start/end span logits, evaluated with the span-F1
fidelity proxy (:func:`repro.models.fidelity.f1_proxy`).
"""

from __future__ import annotations

import numpy as np

from repro.nn.attention import TransformerEncoderLayer
from repro.nn.layers import Embedding, LayerNorm, Linear
from repro.nn.model import Model

PRESETS = {
    "paper": {"dim": 768, "heads": 12, "ffn": 3072, "layers": 12,
              "vocab": 8192, "seq_len": 4},
    "tiny": {"dim": 128, "heads": 4, "ffn": 512, "layers": 4,
             "vocab": 512, "seq_len": 4},
}


class BertBase(Model):
    def __init__(self, preset: str = "paper") -> None:
        super().__init__("bert_base")
        if preset not in PRESETS:
            raise ValueError(f"unknown preset {preset!r}")
        cfg = PRESETS[preset]
        self.preset = preset
        self.dim = cfg["dim"]
        self.seq_len = cfg["seq_len"]
        self.vocab = cfg["vocab"]

        self.embedding = self.add("bert.embeddings.word_embeddings",
                                  Embedding(cfg["vocab"], cfg["dim"],
                                            seed=(self.name, "emb")))
        self.pos_embedding = Embedding(
            512, cfg["dim"], seed=(self.name, "pos"))
        self.embed_ln = LayerNorm(cfg["dim"])

        self.encoder_layers: list[TransformerEncoderLayer] = []
        for i in range(cfg["layers"]):
            block = TransformerEncoderLayer(
                cfg["dim"], cfg["heads"], cfg["ffn"],
                seed=(self.name, "layer", i))
            self.encoder_layers.append(block)
            for sub_name, sub in block.quantized_sublayers().items():
                self.add(f"bert.encoder.layer.{i}.{sub_name}", sub)

        self.qa_head = self.add("qa_outputs", Linear(
            cfg["dim"], 2, seed=(self.name, "qa")))

    @property
    def num_blocks(self) -> int:
        return len(self.encoder_layers)

    def block_layer_names(self, index: int) -> list[str]:
        """All quantized layer names of encoder block ``index``."""
        prefix = f"bert.encoder.layer.{index}."
        return [name for name, _ in self.named_quantized_layers()
                if name.startswith(prefix)]

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        """Token ids ``(batch, seq)`` -> span logits ``(batch, seq, 2)``."""
        batch, seq = token_ids.shape
        positions = np.arange(seq)
        x = self.embedding.forward(token_ids) + \
            self.pos_embedding.forward(positions)[None]
        x = self.embed_ln.forward(x)
        for block in self.encoder_layers:
            x = block.forward(x)
        return self.qa_head.forward(x)

    def sample_inputs(self, batch: int, seed: object = 0) -> np.ndarray:
        from repro.utils.rng import seeded_rng

        rng = seeded_rng(self.name, "inputs", seed)
        return rng.integers(0, self.vocab, (batch, self.seq_len))


def build_bert_base(preset: str = "paper") -> BertBase:
    return BertBase(preset)
