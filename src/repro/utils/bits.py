"""Low-level bit manipulation helpers on NumPy integer arrays.

All bit-plane conventions in this repository are MSB-first: plane index 0
is bit 7 (the sign bit for Int8), plane index 7 is bit 0 (the LSB).
"""

from __future__ import annotations

import numpy as np

_POPCOUNT_TABLE = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)


def unpack_bits(values: np.ndarray) -> np.ndarray:
    """Unpack a uint8 array into bit planes along a trailing axis.

    Parameters
    ----------
    values:
        Array of dtype ``uint8`` (any shape).

    Returns
    -------
    numpy.ndarray
        Array of shape ``values.shape + (8,)`` and dtype ``uint8`` where
        index 0 of the trailing axis is the MSB.
    """
    values = np.asarray(values, dtype=np.uint8)
    return np.unpackbits(values[..., None], axis=-1)


def pack_bits(planes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`unpack_bits`: pack a trailing 8-bit axis to uint8."""
    planes = np.asarray(planes, dtype=np.uint8)
    if planes.shape[-1] != 8:
        raise ValueError(
            f"expected trailing axis of length 8, got {planes.shape[-1]}"
        )
    return np.packbits(planes, axis=-1)[..., 0]


def popcount8(values: np.ndarray) -> np.ndarray:
    """Per-element population count of a uint8 array."""
    values = np.asarray(values, dtype=np.uint8)
    return _POPCOUNT_TABLE[values]
