"""Deterministic random number generation for reproducible experiments."""

from __future__ import annotations

import hashlib

import numpy as np


def seeded_rng(*tokens: object) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from a tuple of tokens.

    The tokens (layer names, experiment ids, integers, ...) are hashed so
    that every call site in the repository derives an independent but
    fully reproducible stream.

    >>> a = seeded_rng("resnet18", "conv1")
    >>> b = seeded_rng("resnet18", "conv1")
    >>> float(a.standard_normal()) == float(b.standard_normal())
    True
    """
    digest = hashlib.sha256("\x1f".join(map(str, tokens)).encode()).digest()
    seed = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(seed)
