"""Shared utilities: bit twiddling, RNG management, report formatting."""

from repro.utils.bits import pack_bits, popcount8, unpack_bits
from repro.utils.progress import ProgressPrinter
from repro.utils.rng import seeded_rng
from repro.utils.tables import format_table

__all__ = ["ProgressPrinter", "format_table", "pack_bits", "popcount8",
           "seeded_rng", "unpack_bits"]
