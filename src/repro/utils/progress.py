"""Progress reporting for long evaluation campaigns.

The DSE executor accepts any callable with the signature
``progress(done, total, label, *, cached, elapsed_s)``;
:class:`ProgressPrinter` is the stock implementation used by the
``python -m repro.dse`` CLI (one diff-friendly line per event).
"""

from __future__ import annotations

import sys
from typing import TextIO


class ProgressPrinter:
    """Print one ``[done/total]`` line per completed evaluation point."""

    def __init__(self, stream: TextIO | None = None, enabled: bool = True):
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled

    def __call__(
        self,
        done: int,
        total: int,
        label: str,
        *,
        cached: bool = False,
        elapsed_s: float | None = None,
    ) -> None:
        if not self.enabled:
            return
        width = len(str(total))
        source = "cached" if cached else (
            f"{elapsed_s:.2f}s" if elapsed_s is not None else "done")
        print(f"[{done:{width}d}/{total}] {label} ({source})",
              file=self.stream, flush=True)
