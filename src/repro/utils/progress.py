"""Progress reporting for long evaluation campaigns.

The DSE executor accepts any callable with the signature
``progress(done, total, label, *, cached, elapsed_s)``;
:class:`ProgressPrinter` is the stock implementation used by the
``python -m repro.dse`` CLI (one diff-friendly line per event, with a
live points/s rate and ETA derived from the completions it observes).
"""

from __future__ import annotations

import sys
import time
from typing import Callable, TextIO


def format_eta(seconds: float) -> str:
    """Compact ``ETA`` spelling: ``42s``, ``3m12s``, ``1h04m``."""
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressPrinter:
    """Print one ``[done/total]`` line per completed evaluation point.

    Fresh (non-cached) completions drive a wall-clock points/s rate and
    an ETA over the remaining points, appended to the live line once at
    least one fresh point has landed -- cached points replay from disk
    orders of magnitude faster and would only distort the forecast.
    ``clock`` is injectable for tests (defaults to ``time.monotonic``).
    """

    def __init__(self, stream: TextIO | None = None, enabled: bool = True,
                 clock: Callable[[], float] = time.monotonic):
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self._clock = clock
        # Construction time is the campaign start: the CLI builds the
        # printer right before run_campaign, so cache-scan time counts.
        self._start = self._clock()
        self._fresh = 0

    def __call__(
        self,
        done: int,
        total: int,
        label: str,
        *,
        cached: bool = False,
        elapsed_s: float | None = None,
    ) -> None:
        if not self.enabled:
            return
        width = len(str(total))
        source = "cached" if cached else (
            f"{elapsed_s:.2f}s" if elapsed_s is not None else "done")
        pace = ""
        if not cached:
            self._fresh += 1
            wall = self._clock() - self._start
            if wall > 0 and self._fresh > 0:
                rate = self._fresh / wall
                remaining = max(0, total - done)
                pace = f" [{rate:.2f}/s"
                if remaining:
                    pace += f", ETA {format_eta(remaining / rate)}"
                pace += "]"
        print(f"[{done:{width}d}/{total}] {label} ({source}){pace}",
              file=self.stream, flush=True)
