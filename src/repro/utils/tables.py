"""Plain-text table rendering for experiment harnesses.

The experiment modules print the same rows/series the paper reports;
this formatter keeps that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
