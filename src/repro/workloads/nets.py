"""Per-network layer tables at the paper's published dimensions.

Workload set of Fig. 12 (left): ResNet18 and MobileNetV2 at 224x224,
the CNN-LSTM audio denoiser, and BERT-Base at input token size 4 (the
size used in the paper's Fig. 13).

Activation value-sparsity metadata follows the paper's Section I
observation: ReLU/ReLU6 networks see substantial activation sparsity
(we use the commonly-measured ~50%/~45%), while sigmoid/tanh (LSTM) and
GELU (BERT) activations are nearly dense.
"""

from __future__ import annotations

import inspect
from functools import lru_cache

from repro.workloads.spec import LayerSpec

#: Input-activation value sparsity by producing activation function.
RELU_SPARSITY = 0.50
RELU6_SPARSITY = 0.45
LSTM_SPARSITY = 0.02
GELU_SPARSITY = 0.05
DENSE_INPUT = 0.0


def resnet18_layers(batch: int = 1) -> list[LayerSpec]:
    """ResNet18 at 224x224: 20 convs + fc (He et al. 2015, Table 1)."""
    layers = [LayerSpec("conv1", "resnet18", "conv", k=64, c=3,
                        ox=112, oy=112, fx=7, fy=7, b=batch,
                        input_value_sparsity=DENSE_INPUT)]
    stage_cfg = [  # (stage, channels, spatial)
        (1, 64, 56), (2, 128, 28), (3, 256, 14), (4, 512, 7),
    ]
    in_ch = 64
    for stage, ch, size in stage_cfg:
        for block in range(2):
            downsampling = stage > 1 and block == 0
            layers.append(LayerSpec(
                f"layer{stage}.{block}.conv1", "resnet18", "conv",
                k=ch, c=in_ch if block == 0 else ch, ox=size, oy=size,
                fx=3, fy=3, b=batch, input_value_sparsity=RELU_SPARSITY))
            layers.append(LayerSpec(
                f"layer{stage}.{block}.conv2", "resnet18", "conv",
                k=ch, c=ch, ox=size, oy=size, fx=3, fy=3, b=batch,
                input_value_sparsity=RELU_SPARSITY))
            if downsampling:
                layers.append(LayerSpec(
                    f"layer{stage}.{block}.downsample", "resnet18", "pwconv",
                    k=ch, c=in_ch, ox=size, oy=size, b=batch,
                    input_value_sparsity=RELU_SPARSITY))
        in_ch = ch
    layers.append(LayerSpec("fc", "resnet18", "fc", k=1000, c=512, ox=1,
                            b=batch, input_value_sparsity=RELU_SPARSITY))
    return layers


#: MobileNetV2 inverted-residual plan: (expansion, channels, repeats, stride).
_MBV2_CFG = (
    (1, 16, 1, 1), (6, 24, 2, 2), (6, 32, 3, 2), (6, 64, 4, 2),
    (6, 96, 3, 1), (6, 160, 3, 2), (6, 320, 1, 1),
)


def mobilenetv2_layers(batch: int = 1) -> list[LayerSpec]:
    """MobileNetV2 at 224x224, conv layers named L.0 .. L.51 + fc."""
    layers: list[LayerSpec] = []
    index = 0

    def add(kind: str, k: int, c: int, size: int, fx: int = 1,
            sparsity: float = RELU6_SPARSITY) -> None:
        nonlocal index
        layers.append(LayerSpec(
            f"L.{index}", "mobilenetv2", kind, k=k, c=c, ox=size, oy=size,
            fx=fx, fy=fx, b=batch, input_value_sparsity=sparsity))
        index += 1

    add("conv", 32, 3, 112, fx=3, sparsity=DENSE_INPUT)  # stem
    in_ch, size = 32, 112
    for t, c_out, n, s in _MBV2_CFG:
        for i in range(n):
            stride = s if i == 0 else 1
            hidden = in_ch * t
            out_size = size // stride
            if t != 1:
                add("pwconv", hidden, in_ch, size)
            add("dwconv", hidden, 1, out_size, fx=3)
            add("pwconv", c_out, hidden, out_size)
            in_ch, size = c_out, out_size
    add("pwconv", 1280, 320, 7)  # head = L.51
    layers.append(LayerSpec("fc", "mobilenetv2", "fc", k=1000, c=1280, ox=1,
                            b=batch, input_value_sparsity=RELU6_SPARSITY))
    return layers


def cnn_lstm_layers(batch: int = 1, frames: int = 16,
                    bins: int = 257, hidden: int = 512) -> list[LayerSpec]:
    """CNN-LSTM denoiser: temporal-conv front-end + 2 LSTMs + decoder.

    The front-end is the canonical speech-enhancement structure: 1-D
    convolutions over time with the spectral bins as channels.  LSTM
    layers map to the nest as per-timestep matmuls over the fused
    ``[x_t, h_{t-1}]`` input: ``K = 4H``, ``C = in + H``, ``OX = frames``.
    """
    return [
        LayerSpec("conv.0", "cnn_lstm", "conv", k=64, c=bins, ox=frames,
                  oy=1, fx=3, fy=1, b=batch,
                  input_value_sparsity=DENSE_INPUT),
        LayerSpec("conv.1", "cnn_lstm", "conv", k=bins, c=64, ox=frames,
                  oy=1, fx=3, fy=1, b=batch,
                  input_value_sparsity=RELU_SPARSITY),
        LayerSpec("LSTM.0", "cnn_lstm", "fc", k=4 * hidden, c=bins + hidden,
                  ox=frames, b=batch, input_value_sparsity=LSTM_SPARSITY),
        LayerSpec("LSTM.1", "cnn_lstm", "fc", k=4 * hidden, c=2 * hidden,
                  ox=frames, b=batch, input_value_sparsity=LSTM_SPARSITY),
        LayerSpec("fc", "cnn_lstm", "fc", k=bins, c=hidden, ox=frames,
                  b=batch, input_value_sparsity=LSTM_SPARSITY),
    ]


def bert_base_layers(batch: int = 1, tokens: int = 4,
                     num_blocks: int = 12) -> list[LayerSpec]:
    """BERT-Base encoder weight matmuls.

    ``tokens`` defaults to the paper's Fig. 13 input size 4 but is a
    first-class workload parameter: ``network_layers("bert_base@tokens=128")``
    builds the same encoder at a 128-token context, so token sweeps are
    expressible as campaign points.
    """
    dim, ffn = 768, 3072
    layers: list[LayerSpec] = []
    for i in range(num_blocks):
        prefix = f"Layer.{i}"
        for proj in ("query", "key", "value"):
            layers.append(LayerSpec(
                f"{prefix}.attention.{proj}", "bert_base", "fc",
                k=dim, c=dim, ox=tokens, b=batch,
                input_value_sparsity=DENSE_INPUT))
        layers.append(LayerSpec(
            f"{prefix}.attention.output", "bert_base", "fc",
            k=dim, c=dim, ox=tokens, b=batch,
            input_value_sparsity=DENSE_INPUT))
        layers.append(LayerSpec(
            f"{prefix}.ffn.intermediate", "bert_base", "fc",
            k=ffn, c=dim, ox=tokens, b=batch,
            input_value_sparsity=DENSE_INPUT))
        layers.append(LayerSpec(
            f"{prefix}.ffn.output", "bert_base", "fc",
            k=dim, c=ffn, ox=tokens, b=batch,
            input_value_sparsity=GELU_SPARSITY))
    layers.append(LayerSpec(
        "qa_outputs", "bert_base", "fc", k=2, c=dim, ox=tokens, b=batch,
        input_value_sparsity=DENSE_INPUT))
    return layers


NETWORKS = ("resnet18", "mobilenetv2", "cnn_lstm", "bert_base")

_BUILDERS = {
    "resnet18": resnet18_layers,
    "mobilenetv2": mobilenetv2_layers,
    "cnn_lstm": cnn_lstm_layers,
    "bert_base": bert_base_layers,
}

#: Tunable workload parameters accepted per network (the ``@name=value``
#: suffix of a parametrized workload spec).  BERT's token count is the
#: headline axis (the paper pins it to 4; token sweeps vary it).
WORKLOAD_PARAMS: dict[str, tuple[str, ...]] = {
    "resnet18": (),
    "mobilenetv2": (),
    "cnn_lstm": ("frames", "bins", "hidden"),
    "bert_base": ("tokens", "num_blocks"),
}


def parse_network(spec: str) -> tuple[str, dict[str, int]]:
    """Split a workload spec into ``(base network, parameters)``.

    ``"bert_base"`` -> ``("bert_base", {})``;
    ``"bert_base@tokens=128"`` -> ``("bert_base", {"tokens": 128})``.
    Multiple parameters join with ``+`` (comma stays free for CSV grid
    axes): ``"cnn_lstm@frames=4+hidden=128"``.  Raises ``ValueError``
    for unknown networks, unknown parameters, and non-positive values.
    """
    base, _, param_str = spec.partition("@")
    if base not in _BUILDERS:
        raise ValueError(f"unknown network {base!r}; one of {NETWORKS}")
    params: dict[str, int] = {}
    if param_str:
        allowed = WORKLOAD_PARAMS[base]
        for part in param_str.split("+"):
            name, sep, raw = part.partition("=")
            if not sep or not name or not raw:
                raise ValueError(
                    f"bad workload parameter {part!r} in {spec!r} "
                    f"(expected name=value)")
            if name not in allowed:
                raise ValueError(
                    f"unknown parameter {name!r} for {base}; "
                    f"one of {allowed or '(none)'}")
            if name in params:
                raise ValueError(
                    f"duplicate parameter {name!r} in {spec!r}")
            try:
                value = int(raw)
            except ValueError:
                raise ValueError(
                    f"parameter {name!r} must be an integer, got {raw!r}")
            if value < 1:
                raise ValueError(
                    f"parameter {name!r} must be >= 1, got {value}")
            params[name] = value
    return base, params


@lru_cache(maxsize=None)
def _builder_defaults(base: str) -> dict[str, int]:
    """Default values of a network's tunable parameters."""
    signature = inspect.signature(_BUILDERS[base])
    return {name: signature.parameters[name].default
            for name in WORKLOAD_PARAMS[base]}


def canonical_network(spec: str) -> str:
    """One spelling per workload: defaults dropped, parameters sorted.

    ``"bert_base@tokens=4"`` (the builder default) canonicalizes to
    ``"bert_base"``, and ``"cnn_lstm@hidden=128+frames=4"`` to
    ``"cnn_lstm@frames=4+hidden=128"`` -- so equivalent spellings share
    one evaluation-cache key and one campaign grid point.
    """
    base, params = parse_network(spec)
    defaults = _builder_defaults(base)
    kept = {name: value for name, value in sorted(params.items())
            if value != defaults[name]}
    if not kept:
        return base
    return base + "@" + "+".join(f"{n}={v}" for n, v in kept.items())


def network_layers(network: str, batch: int = 1) -> list[LayerSpec]:
    """Layer table of a benchmark network, optionally parametrized.

    ``network`` accepts a bare registry name (``"bert_base"``) or a
    parametrized spec (``"bert_base@tokens=128"``, see
    :func:`parse_network`).
    """
    base, params = parse_network(network)
    return _BUILDERS[base](batch=batch, **params)
