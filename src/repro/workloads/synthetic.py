"""Synthetic Int8 weights with pretrained-network statistics.

The sparsity, compression and accelerator experiments need the weight
*bit patterns* of the four benchmarks.  Pretrained checkpoints are not
available offline; instead we sample float weights from fan-in-scaled
Gaussians with a small exact-zero fraction (the DESIGN.md §2
substitution) and symmetric-quantize to Int8 -- reproducing the
small-magnitude-dominated histograms of the paper's Fig. 4(b).

Weights are laid out group-axis style (input channels innermost),
matching :meth:`repro.nn.layers.Conv2d.packed_weights`.
"""

from __future__ import annotations

import numpy as np

from repro.quant.quantizer import quantize_symmetric
from repro.utils.rng import seeded_rng
from repro.workloads.spec import LayerSpec

#: Fraction of exact zeros injected before quantization, mimicking the
#: dead weights of pretrained Int8 networks (Fig. 1 value sparsity).
ZERO_FRACTION = 0.04


def synthetic_weights(spec: LayerSpec) -> np.ndarray:
    """Deterministic Int8 weights of the layer in group-axis layout.

    Shape is ``(K, FY * FX * C)`` for conv/fc layers and
    ``(K, FY * FX)`` for depthwise layers.
    """
    fan_in = spec.c * spec.fx * spec.fy
    if spec.kind == "dwconv":
        shape = (spec.k, spec.fy * spec.fx)
        fan_in = spec.fx * spec.fy
    else:
        shape = (spec.k, spec.fy * spec.fx * spec.c)
    rng = seeded_rng("weights", spec.network, spec.name)
    std = np.sqrt(2.0 / max(fan_in, 1))
    # Laplacian, not Gaussian: pretrained conv/fc weights are heavy-
    # tailed, so after amax-scaled Int8 quantization most values sit
    # near zero -- the distribution the paper's Fig. 4(b) histogram and
    # Fig. 1 bit-sparsity levels reflect.
    weights = rng.laplace(0.0, std / np.sqrt(2.0), size=shape)
    weights[rng.random(size=shape) < ZERO_FRACTION] = 0.0
    return quantize_symmetric(weights).values
