"""Layer-shape databases for the four benchmark networks (Fig. 12 left)."""

from repro.workloads.nets import (
    NETWORKS,
    bert_base_layers,
    cnn_lstm_layers,
    mobilenetv2_layers,
    network_layers,
    resnet18_layers,
)
from repro.workloads.spec import LayerSpec
from repro.workloads.synthetic import synthetic_weights

__all__ = [
    "LayerSpec",
    "NETWORKS",
    "bert_base_layers",
    "cnn_lstm_layers",
    "mobilenetv2_layers",
    "network_layers",
    "resnet18_layers",
    "synthetic_weights",
]
