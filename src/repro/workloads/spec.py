"""Layer specification: the 7-dim loop nest of Fig. 2.

A :class:`LayerSpec` captures the dimensions the paper's loop nests use:

- ``B``  batch
- ``K``  output channels / kernels
- ``C``  input channels
- ``OX, OY``  output feature map width/height
- ``FX, FY``  kernel width/height

Fully-connected and attention matmuls map onto the same nest with
``OX = tokens``, ``OY = FX = FY = 1`` (the standard im2col view).
Depthwise convolutions have ``C = 1`` per kernel with ``K`` kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Layer kinds; depthwise ("dwconv") and pointwise ("pwconv") get their
#: own tags because the dataflow analysis (Fig. 9) treats them as
#: distinct workload classes.
KINDS = ("conv", "dwconv", "pwconv", "fc")


@dataclass(frozen=True)
class LayerSpec:
    """One layer's loop dimensions plus workload metadata."""

    name: str
    network: str
    kind: str
    k: int
    c: int
    ox: int
    oy: int = 1
    fx: int = 1
    fy: int = 1
    b: int = 1
    #: Value sparsity of this layer's *input* activations (drives SCNN's
    #: activation skipping).  Dense inputs (images, embeddings) are 0.
    input_value_sparsity: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown layer kind {self.kind!r}")
        for dim in ("k", "c", "ox", "oy", "fx", "fy", "b"):
            if getattr(self, dim) < 1:
                raise ValueError(f"{dim} must be >= 1 in {self.name}")
        if not 0.0 <= self.input_value_sparsity < 1.0:
            raise ValueError(
                f"input_value_sparsity out of range in {self.name}")

    @property
    def dims(self) -> dict[str, int]:
        return {
            "B": self.b, "K": self.k, "C": self.c,
            "OX": self.ox, "OY": self.oy, "FX": self.fx, "FY": self.fy,
        }

    @property
    def macs(self) -> int:
        """Total MAC count of the nest."""
        total = 1
        for value in self.dims.values():
            total *= value
        return total

    @property
    def weight_count(self) -> int:
        if self.kind == "dwconv":
            return self.k * self.fx * self.fy
        return self.k * self.c * self.fx * self.fy

    @property
    def input_count(self) -> int:
        """Input activation elements (unit stride approximation)."""
        if self.kind == "dwconv":
            channels = self.k
        else:
            channels = self.c
        return self.b * channels * (self.ox + self.fx - 1) * (self.oy + self.fy - 1)

    @property
    def output_count(self) -> int:
        return self.b * self.k * self.ox * self.oy

    def scaled(self, batch: int) -> "LayerSpec":
        """Same layer at a different batch size."""
        return LayerSpec(
            name=self.name, network=self.network, kind=self.kind,
            k=self.k, c=self.c, ox=self.ox, oy=self.oy,
            fx=self.fx, fy=self.fy, b=batch,
            input_value_sparsity=self.input_value_sparsity,
        )
