"""16 nm technology constants (paper Section V-A/V-B STEP4).

Unit energies per access/operation.  On-chip values derive from the
paper's own synthesis-based breakdowns (Table IV per-PE power at
250 MHz, Fig. 18 component shares); DRAM energy uses the published
DRAMPower DDR3 coefficient.  All values are in picojoules.

Per-PE energies from Table IV at 250 MHz (energy = power / frequency):

- one 8x8 bit-parallel PE: 2.13e-2 mW -> 0.0852 pJ per MAC;
- eight 1x8 bit-serial PEs (one MAC-equivalent per cycle): 5.71e-2 mW
  -> 0.2284 pJ per MAC-equivalent cycle;
- eight 1x8 bit-column-serial PEs (one BCE): 1.71e-2 mW -> 0.0684 pJ
  per column cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

CLOCK_FREQUENCY_HZ = 250e6


@dataclass(frozen=True)
class Technology:
    """Unit energies (pJ) and interface widths (bits/cycle)."""

    # --- energy per 8-bit element access -----------------------------
    dram_pj_per_element: float
    sram_pj_per_element: float
    reg_pj_per_element: float
    # --- energy per compute operation --------------------------------
    mac_bit_parallel_pj: float
    mac_bit_serial_cycle_pj: float
    bce_column_cycle_pj: float
    # --- interface widths ---------------------------------------------
    dram_bits_per_cycle: int
    sram_bits_per_cycle: int

    def dram_elements_per_cycle(self) -> float:
        return self.dram_bits_per_cycle / 8.0

    def sram_elements_per_cycle(self, bits_per_cycle: int | None = None) -> float:
        bits = bits_per_cycle or self.sram_bits_per_cycle
        return bits / 8.0


#: DDR3 streaming I/O energy ~7.5 pJ/bit (DRAMPower, activate+read
#: amortized over bursts): 60 pJ per byte.
#: 256 KB single-port SRAM in 16 nm: ~0.125 pJ/bit -> 1.0 pJ per byte.
#: Pipeline/accumulator registers: ~0.03 pJ per byte.
#: DDR3-1600 on a 64-bit channel delivers 12.8 GB/s; against the 250 MHz
#: accelerator clock that is 51 bytes/cycle, modelled as 512 bits/cycle.
TECH_16NM = Technology(
    dram_pj_per_element=60.0,
    sram_pj_per_element=1.00,
    reg_pj_per_element=0.03,
    mac_bit_parallel_pj=0.0852,
    mac_bit_serial_cycle_pj=0.2284 / 8.0,   # per 1x8 lane-cycle
    bce_column_cycle_pj=0.0684 / 8.0,       # per SMM lane-cycle
    dram_bits_per_cycle=512,
    sram_bits_per_cycle=1024,
)
