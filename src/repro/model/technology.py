"""The numeric technology type consumed by the STEP4 pricing functions.

The *description* of the 16 nm technology point -- unit energies, clock,
PE areas -- lives in :class:`repro.arch.TechSpec` (the typed
hardware-description API); this module keeps the flat numeric
:class:`Technology` record that :mod:`repro.model.latency` /
:mod:`repro.model.energy` / :mod:`repro.model.roofline` price with, plus
deprecation shims for the old module-level constants.

.. deprecated::
    ``TECH_16NM`` and ``CLOCK_FREQUENCY_HZ`` are compatibility aliases
    of the default :class:`repro.arch.TechSpec`; new code should carry
    an :class:`repro.arch.ArchSpec` (or call
    :func:`default_technology`) instead of importing the constants.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """Unit energies (pJ) and interface widths (bits/cycle)."""

    # --- energy per 8-bit element access -----------------------------
    dram_pj_per_element: float
    sram_pj_per_element: float
    reg_pj_per_element: float
    # --- energy per compute operation --------------------------------
    mac_bit_parallel_pj: float
    mac_bit_serial_cycle_pj: float
    bce_column_cycle_pj: float
    # --- interface widths ---------------------------------------------
    dram_bits_per_cycle: int
    sram_bits_per_cycle: int

    def dram_elements_per_cycle(self) -> float:
        return self.dram_bits_per_cycle / 8.0

    def sram_elements_per_cycle(self, bits_per_cycle: int | None = None) -> float:
        bits = bits_per_cycle or self.sram_bits_per_cycle
        return bits / 8.0


def default_technology() -> Technology:
    """The default 16 nm point (``repro.arch``'s default TechSpec)."""
    return TECH_16NM


# -- deprecated constants (values defined by repro.arch.TechSpec) -----
# repro.arch.spec imports nothing from repro.model at module level, and
# Technology is defined above before the import runs, so this derivation
# is cycle-free however the two packages are first imported.
from repro.arch.spec import TechSpec as _TechSpec  # noqa: E402

_DEFAULT_TECH_SPEC = _TechSpec()

#: Deprecated alias: the default :class:`repro.arch.TechSpec` clock.
CLOCK_FREQUENCY_HZ = _DEFAULT_TECH_SPEC.clock_frequency_hz

#: Deprecated alias: the default :class:`repro.arch.TechSpec`'s numeric
#: view.  Kept so historical callers (and stored notebooks) keep
#: working; the values are single-sourced from ``repro.arch``.
TECH_16NM = _DEFAULT_TECH_SPEC.technology()
