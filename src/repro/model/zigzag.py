"""Dense activity-count extraction (the Table II quantities).

``map_layer`` plays the role of the ZigZag analytical mapper: given a
layer and a spatial unrolling it derives, for an output-stationary
temporal schedule over a DRAM + dual-SRAM + register hierarchy, the
dense per-level access counts that equations (3)-(5) consume.

Counting model (element = one 8-bit word):

- the PE array issues ``lanes`` operand slots per cycle whether or not
  a lane is useful, so on-chip operand traffic scales with the *padded*
  MAC count ``Nmac / utilization`` -- this is the paper's "lower PE
  utilization ... increased need for on-chip data accesses" mechanism;
- spatial broadcast divides operand fetches by the operand's spatial
  reuse; PE-local operand/psum registers additionally capture a bounded
  window (:data:`REG_REUSE_WINDOW`) of temporal reuse: weights stay
  while the lane sweeps nearby output positions, inputs stay while the
  array sweeps the kernel tile;
- outputs accumulate locally (output stationary) and are written to
  SRAM once;
- tensors travel DRAM<->SRAM once; intermediate activations that fit
  half the activation SRAM are *fused* on chip (never visit DRAM);
  weights re-stream once per activation tile when neither tensor fits;
- register traffic is two operand reads and one accumulator write per
  (useful) MAC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.mapping import SpatialUnrolling
from repro.workloads.spec import LayerSpec

#: On-chip buffer sizes of the common comparison platform (Fig. 12):
#: 256 KB weight SRAM + 256 KB activation SRAM.
WEIGHT_SRAM_BYTES = 256 * 1024
ACT_SRAM_BYTES = 256 * 1024

#: Output positions (for weights) / kernel slices (for inputs) a fetched
#: operand survives in PE-local registers before re-fetch.
REG_REUSE_WINDOW = 16

_OUTPUT_SPACE = frozenset({"B", "OX", "OY"})
_KERNEL_SPACE = frozenset({"K"})


def act_fusion_tile_bytes(act_sram_bytes: int) -> int:
    """Activation fusion tile: half the activation SRAM (double-buffered
    layer-to-layer forwarding)."""
    return act_sram_bytes // 2


def fused_dram_elems(elems: int, act_tile_bytes: int) -> float:
    """Activation elements crossing DRAM under the fusion rule.

    Intermediate tensors that fit the fusion tile are forwarded on chip
    and never touch DRAM.  The one home of the rule: :func:`map_layer`
    and the simulator's energy epilog (:mod:`repro.sim.energy`) both
    call it, so the two backends cannot drift.
    """
    return float(elems) if elems > act_tile_bytes else 0.0


def weight_stream_passes(weight_bytes_dense: int, input_elems: int,
                         weight_sram_bytes: int,
                         act_tile_bytes: int) -> int:
    """DRAM re-stream count when neither tensor fits on chip.

    Weights stream once per activation tile only when the *dense*
    weight footprint exceeds the weight SRAM and the activations exceed
    one fusion tile.  Shared with the simulator's energy epilog, like
    :func:`fused_dram_elems`.
    """
    if weight_bytes_dense > weight_sram_bytes and \
            input_elems > act_tile_bytes:
        return math.ceil(input_elems / act_tile_bytes)
    return 1


@dataclass(frozen=True)
class ActivityCounts:
    """Dense activity counts of one (layer, SU) pair -- Table II."""

    n_mac: int
    macs_per_cycle: float
    utilization: float
    # element counts
    dram_read_weight: float
    dram_read_act: float
    dram_write_act: float
    sram_read_weight: float
    sram_read_input: float
    sram_write_output: float
    reg_read: float
    reg_write: float

    @property
    def dram_traffic(self) -> float:
        return self.dram_read_weight + self.dram_read_act + self.dram_write_act


def map_layer(
    spec: LayerSpec,
    su: SpatialUnrolling,
    weight_sram_bytes: int = WEIGHT_SRAM_BYTES,
    act_sram_bytes: int = ACT_SRAM_BYTES,
) -> ActivityCounts:
    """Derive dense activity counts for ``spec`` under ``su``."""
    n_mac = spec.macs
    utilization = max(su.utilization(spec), 1e-12)
    macs_per_cycle = max(su.macs_per_cycle(spec), 1e-12)
    padded_macs = n_mac / utilization

    # --- DRAM ----------------------------------------------------------
    act_tile_capacity = act_fusion_tile_bytes(act_sram_bytes)
    weight_passes = weight_stream_passes(
        spec.weight_count, spec.input_count,
        weight_sram_bytes, act_tile_capacity)
    dram_read_weight = float(spec.weight_count * weight_passes)
    # Intermediate activations that fit on chip are fused (layer-to-layer
    # forwarding through the activation SRAM).
    dram_read_act = fused_dram_elems(spec.input_count, act_tile_capacity)
    dram_write_act = fused_dram_elems(spec.output_count, act_tile_capacity)

    # --- SRAM ----------------------------------------------------------
    # Temporal register reuse: a weight survives while its lane sweeps
    # the output positions not covered spatially; an input survives
    # while the array sweeps the kernels not covered spatially.
    outputs_per_weight = spec.b * spec.ox * spec.oy / max(
        su.effective_parallelism(spec, _OUTPUT_SPACE), 1.0)
    weight_temporal = min(REG_REUSE_WINDOW, max(outputs_per_weight, 1.0))
    kernels_per_input = spec.k / max(
        su.effective_parallelism(spec, _KERNEL_SPACE), 1.0)
    input_temporal = min(REG_REUSE_WINDOW, max(kernels_per_input, 1.0))

    sram_read_weight = padded_macs / (
        su.weight_spatial_reuse(spec) * weight_temporal)
    sram_read_input = padded_macs / (
        su.input_spatial_reuse(spec) * input_temporal)
    sram_write_output = float(spec.output_count)

    return ActivityCounts(
        n_mac=n_mac,
        macs_per_cycle=macs_per_cycle,
        utilization=utilization,
        dram_read_weight=dram_read_weight,
        dram_read_act=dram_read_act,
        dram_write_act=dram_write_act,
        sram_read_weight=sram_read_weight,
        sram_read_input=sram_read_input,
        sram_write_output=sram_write_output,
        reg_read=2.0 * n_mac,
        reg_write=float(n_mac),
    )
