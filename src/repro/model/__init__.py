"""Analytical accelerator model (Section V-B, equations (1)-(5)).

The paper models every compared accelerator with a Sparseloop-inspired
four-step flow: (1) map each layer with ZigZag to get dense activity
counts (Table II), (2) extract sparsity statistics, (3) scale the
activity counts by skipping/compression, and (4) convert to energy and
latency with per-technology unit costs.  This package reimplements that
flow from scratch.
"""

from repro.model.area import (
    bitwave_area_breakdown,
    bitwave_power_breakdown,
    pe_type_comparison,
    system_specs,
)
from repro.model.energy import EnergyBreakdown, total_energy
from repro.model.latency import LatencyBreakdown, total_cycles
from repro.model.mapping import SpatialUnrolling
from repro.model.roofline import RooflinePoint, layer_roofline, network_roofline
from repro.model.technology import Technology, TECH_16NM
from repro.model.zigzag import ActivityCounts, map_layer

__all__ = [
    "ActivityCounts",
    "EnergyBreakdown",
    "LatencyBreakdown",
    "RooflinePoint",
    "SpatialUnrolling",
    "TECH_16NM",
    "Technology",
    "bitwave_area_breakdown",
    "bitwave_power_breakdown",
    "layer_roofline",
    "map_layer",
    "network_roofline",
    "pe_type_comparison",
    "system_specs",
    "total_cycles",
    "total_energy",
]
