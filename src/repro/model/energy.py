"""Energy model: equation (4) of the paper.

``Total energy = sum over memory levels of (effective accesses x unit
energy) + effective MACs x unit MAC energy``.

The compute term is supplied by the accelerator (bit-parallel MACs,
bit-serial lane-cycles, or BCE column-cycles price differently, per
Table IV); the memory terms are shared.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.technology import Technology, default_technology
from repro.model.zigzag import ActivityCounts


@dataclass(frozen=True)
class EnergyBreakdown:
    """Picojoules per component (Fig. 16's categories)."""

    dram_pj: float
    sram_pj: float
    reg_pj: float
    compute_pj: float

    @property
    def total_pj(self) -> float:
        return self.dram_pj + self.sram_pj + self.reg_pj + self.compute_pj

    @property
    def on_chip_pj(self) -> float:
        return self.sram_pj + self.reg_pj + self.compute_pj

    def shares(self) -> dict[str, float]:
        total = self.total_pj
        if total == 0:
            return {"dram": 0.0, "sram": 0.0, "reg": 0.0, "compute": 0.0}
        return {
            "dram": self.dram_pj / total,
            "sram": self.sram_pj / total,
            "reg": self.reg_pj / total,
            "compute": self.compute_pj / total,
        }


def total_energy(
    counts: ActivityCounts,
    compute_pj: float,
    weight_cr: float = 1.0,
    act_cr: float = 1.0,
    sram_weight_overhead: float = 1.0,
    tech: Technology | None = None,
) -> EnergyBreakdown:
    """Equation (4) with the compression scaling of equation (3)."""
    if weight_cr <= 0 or act_cr <= 0:
        raise ValueError("compression ratios must be positive")
    if tech is None:
        tech = default_technology()
    dram_elements = (
        counts.dram_read_weight / weight_cr
        + counts.dram_read_act / act_cr
        + counts.dram_write_act / act_cr
    )
    sram_elements = (
        counts.sram_read_weight / weight_cr * sram_weight_overhead
        + counts.sram_read_input
        + counts.sram_write_output
    )
    reg_elements = counts.reg_read + counts.reg_write
    return EnergyBreakdown(
        dram_pj=dram_elements * tech.dram_pj_per_element,
        sram_pj=sram_elements * tech.sram_pj_per_element,
        reg_pj=reg_elements * tech.reg_pj_per_element,
        compute_pj=compute_pj,
    )
