"""Latency model: equations (1), (2), (3) and (5) of the paper.

Equation (5) assumes memory transfers hide under compute or vice versa:

``Total cycles = N_DRAM r/w,e + N_SRAM write-output,e
               + max(N_SRAM read-input,e, N_SRAM read-weight,e,
                     N_reg read,e, CC_mac,e)``

where every access count is first converted to cycles at its interface
width.  The DRAM term is serialized (single off-chip channel shared by
all tensors), the output write-back is serialized with compute (single
port), and the remaining on-chip streams overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.technology import Technology, default_technology
from repro.model.zigzag import ActivityCounts


@dataclass(frozen=True)
class LatencyBreakdown:
    """Cycle counts per term of equation (5)."""

    dram_cycles: float
    sram_write_output_cycles: float
    sram_read_input_cycles: float
    sram_read_weight_cycles: float
    reg_read_cycles: float
    compute_cycles: float

    @property
    def overlap_term(self) -> float:
        return max(
            self.sram_read_input_cycles,
            self.sram_read_weight_cycles,
            self.reg_read_cycles,
            self.compute_cycles,
        )

    @property
    def total(self) -> float:
        return self.dram_cycles + self.sram_write_output_cycles + self.overlap_term

    @property
    def compute_bound(self) -> bool:
        return self.compute_cycles >= self.overlap_term - 1e-9


def total_cycles(
    counts: ActivityCounts,
    compute_cycles: float,
    weight_cr: float = 1.0,
    act_cr: float = 1.0,
    sram_weight_overhead: float = 1.0,
    tech: Technology | None = None,
    sram_w_bits_per_cycle: int | None = None,
    sram_a_bits_per_cycle: int | None = None,
) -> LatencyBreakdown:
    """Equation (5) with the sparsity scaling of equation (3).

    Parameters
    ----------
    counts:
        Dense activity counts from :func:`repro.model.zigzag.map_layer`.
    compute_cycles:
        Effective compute cycles ``CC_mac,e`` (equations (1)-(2)),
        supplied by the accelerator's cycle model.
    weight_cr / act_cr:
        Compression ratios dividing weight / activation traffic
        (equation (3)).
    sram_weight_overhead:
        Multiplier >= 1 on SRAM weight reads for accelerators that
        fetch index metadata at runtime (e.g. Bitlet).
    """
    if weight_cr <= 0 or act_cr <= 0:
        raise ValueError("compression ratios must be positive")
    if tech is None:
        tech = default_technology()
    dram_elements = (
        counts.dram_read_weight / weight_cr
        + counts.dram_read_act / act_cr
        + counts.dram_write_act / act_cr
    )
    dram_cycles = dram_elements / tech.dram_elements_per_cycle()

    w_elems_per_cycle = tech.sram_elements_per_cycle(sram_w_bits_per_cycle)
    a_elems_per_cycle = tech.sram_elements_per_cycle(sram_a_bits_per_cycle)

    sram_read_weight_cycles = (
        counts.sram_read_weight / weight_cr * sram_weight_overhead
        / w_elems_per_cycle)
    sram_read_input_cycles = counts.sram_read_input / a_elems_per_cycle
    sram_write_output_cycles = counts.sram_write_output / a_elems_per_cycle
    # Registers are as wide as the PE array: never narrower than compute.
    reg_read_cycles = counts.reg_read / max(counts.macs_per_cycle * 2.0, 1e-12)

    return LatencyBreakdown(
        dram_cycles=dram_cycles,
        sram_write_output_cycles=sram_write_output_cycles,
        sram_read_input_cycles=sram_read_input_cycles,
        sram_read_weight_cycles=sram_read_weight_cycles,
        reg_read_cycles=reg_read_cycles,
        compute_cycles=compute_cycles,
    )
