"""Roofline analysis: arithmetic intensity vs the machine balance point.

Explains *where* each of BitWave's two levers pays off: compression
moves memory-bound layers (it raises effective bandwidth), column
skipping moves compute-bound layers (it raises effective throughput).
BERT-Base at token size 4 sits far left of the ridge (Bit-Flip's 2.67x
comes from compression); ResNet18's convolutions sit right of it (their
gains come from skipping).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.technology import Technology, default_technology
from repro.workloads.spec import LayerSpec


@dataclass(frozen=True)
class RooflinePoint:
    """One layer's position on the roofline."""

    layer: str
    arithmetic_intensity: float  # MACs per off-chip byte
    ridge_point: float           # machine balance (MACs/cycle per B/cycle)
    memory_bound: bool

    @property
    def headroom(self) -> float:
        """Intensity / ridge: <1 memory-bound, >1 compute-bound."""
        return self.arithmetic_intensity / self.ridge_point


def layer_roofline(
    spec: LayerSpec,
    peak_macs_per_cycle: float = 512.0,
    weight_cr: float = 1.0,
    tech: Technology | None = None,
) -> RooflinePoint:
    """Place a layer on the roofline of the modelled platform.

    ``weight_cr`` divides the weight traffic, shifting the layer right
    -- exactly how BCS compression converts memory-bound layers into
    compute-bound ones.
    """
    if weight_cr <= 0:
        raise ValueError("weight_cr must be positive")
    if tech is None:
        tech = default_technology()
    traffic_bytes = spec.weight_count / weight_cr + spec.input_count \
        + spec.output_count
    intensity = spec.macs / traffic_bytes
    bytes_per_cycle = tech.dram_bits_per_cycle / 8.0
    ridge = peak_macs_per_cycle / bytes_per_cycle
    return RooflinePoint(
        layer=spec.name,
        arithmetic_intensity=intensity,
        ridge_point=ridge,
        memory_bound=intensity < ridge,
    )


def network_roofline(
    specs: list[LayerSpec],
    peak_macs_per_cycle: float = 512.0,
    weight_cr: float = 1.0,
    tech: Technology | None = None,
) -> list[RooflinePoint]:
    """Roofline placement of every layer of a workload."""
    return [
        layer_roofline(spec, peak_macs_per_cycle, weight_cr, tech)
        for spec in specs
    ]
