"""Spatial unrolling (SU) and utilization math (paper Section II-A, Fig. 9).

A :class:`SpatialUnrolling` assigns parallelism factors to loop
dimensions.  Utilization on a layer is the product over unrolled dims of
``dim / (ceil(dim / factor) * factor)`` -- the fraction of lanes doing
useful work given that partially-filled iterations round up.  This is
exactly why large bit-serial arrays under-utilize: the same 4096 lanes
spread over more dims leave more remainder lanes idle (Fig. 9's
observation that "the larger-sized PE array suffers more severe
under-utilization").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.workloads.spec import LayerSpec

#: Dims a weight element is indexed by (the rest broadcast weights).
WEIGHT_DIMS = frozenset({"K", "C", "FX", "FY"})
#: Dims an input activation is indexed by (the rest broadcast inputs).
INPUT_DIMS = frozenset({"B", "C", "OX", "OY", "FX", "FY"})
#: Dims that select an output element (the rest reduce into it).
OUTPUT_DIMS = frozenset({"B", "K", "OX", "OY"})


@dataclass(frozen=True)
class SpatialUnrolling:
    """Named assignment of spatial parallelism to loop dims.

    ``fold_reduction=True`` models CK-style bit-parallel arrays (NVDLA,
    HUAA, the Fig. 13 Dense baseline) whose reduction lanes consume the
    *flattened* ``C x FX x FY`` reduction -- an im2col view -- so a
    C=3, 7x7 stem conv still fills 147 of 64 lanes.  BitWave's SUs keep
    ``fold_reduction=False``: the bit column spans input channels only
    ("we assume unrolling across C", Section IV-B).
    """

    name: str
    factors: dict[str, int] = field(hash=False)
    fold_reduction: bool = False

    def __post_init__(self) -> None:
        for dim, factor in self.factors.items():
            if dim not in {"B", "K", "C", "OX", "OY", "FX", "FY", "G"}:
                raise ValueError(f"unknown dim {dim!r} in SU {self.name}")
            if factor < 1:
                raise ValueError(f"factor must be >= 1 for {dim} in {self.name}")
        if self.fold_reduction and ("FX" in self.factors or "FY" in self.factors):
            raise ValueError(
                f"SU {self.name}: fold_reduction subsumes FX/FY factors")

    @property
    def lanes(self) -> int:
        """Total spatial lanes (PEs/SMMs occupied by this SU)."""
        total = 1
        for factor in self.factors.values():
            total *= factor
        return total

    def _dim_size(self, spec: LayerSpec, dim: str) -> int:
        if dim == "G":
            # The depthwise "group" dim unrolls kernels (= channels).
            return spec.k
        if dim == "C" and self.fold_reduction:
            return spec.c * spec.fx * spec.fy
        return spec.dims[dim]

    def utilization(self, spec: LayerSpec) -> float:
        """Average fraction of lanes doing useful work on this layer."""
        util = 1.0
        for dim, factor in self.factors.items():
            size = self._dim_size(spec, dim)
            util *= size / (math.ceil(size / factor) * factor)
        return util

    def effective_parallelism(self, spec: LayerSpec, dims: frozenset[str]) -> float:
        """Average useful lanes across the given dims (spatial reuse)."""
        reuse = 1.0
        for dim, factor in self.factors.items():
            key = "K" if dim == "G" else dim
            if key not in dims:
                continue
            size = self._dim_size(spec, dim)
            reuse *= size / math.ceil(size / factor)
        return reuse

    def weight_spatial_reuse(self, spec: LayerSpec) -> float:
        """How many lanes share one weight element per cycle."""
        broadcast_dims = frozenset(
            {"B", "K", "C", "OX", "OY", "FX", "FY"} - WEIGHT_DIMS)
        return max(self.effective_parallelism(spec, broadcast_dims), 1.0)

    def input_spatial_reuse(self, spec: LayerSpec) -> float:
        """How many lanes share one input element per cycle."""
        broadcast_dims = frozenset(
            {"B", "K", "C", "OX", "OY", "FX", "FY"} - INPUT_DIMS)
        return max(self.effective_parallelism(spec, broadcast_dims), 1.0)

    def macs_per_cycle(self, spec: LayerSpec) -> float:
        """Useful MAC lanes per cycle on this layer."""
        return self.lanes * self.utilization(spec)


def best_su(
    sus: tuple[SpatialUnrolling, ...], spec: LayerSpec
) -> SpatialUnrolling:
    """The SU with the highest utilization for this layer.

    This is the offline ZigZag design-space exploration the BitWave top
    controller consumes per layer (Section IV-C); ties break toward the
    earlier entry, so SU lists should be ordered by preference.
    """
    if not sus:
        raise ValueError("no spatial unrollings provided")
    return max(sus, key=lambda su: (su.macs_per_cycle(spec), -sus.index(su)))
