"""Area/power breakdown and system specs (Fig. 18, Table III, Table IV).

Component models are calibrated against the paper's published synthesis
results in 16 nm FinFET at 250 MHz / 0.8 V: total area 1.138 mm^2, total
power 17.56 mW running ResNet18, with the component shares of Fig. 18.
Each component is expressed as a unit cost times its instance count, so
the model extrapolates to other configuration points (e.g. the PE-type
study of Table IV or scaled SRAM).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Paper's system configuration.
N_BCE = 512
SRAM_KB = 512  # 256 KB weights + 256 KB activations
CLOCK_MHZ = 250.0

# --- Table IV: per-PE area (um^2) and power (mW) at 250 MHz ----------
PE_TYPES = {
    # One 8x8 bit-parallel PE.
    "bit_parallel": {"area_um2": 98.029, "power_mw": 2.13e-2},
    # Eight 1x8 bit-serial PEs (same throughput as one 8x8 PE).
    "bit_serial": {"area_um2": 443.284, "power_mw": 5.71e-2},
    # Eight 1x8 bit-column-serial PEs = one BitWave BCE.
    "bit_column_serial": {"area_um2": 123.431, "power_mw": 1.71e-2},
}

# --- Fig. 18 calibration ----------------------------------------------
TOTAL_AREA_MM2 = 1.138
TOTAL_POWER_MW = 17.56  # running ResNet18

#: Area shares (Fig. 18 left).
AREA_SHARES = {
    "sram": 0.5508,
    "pe_array": 0.247,
    "data_dispatcher": 0.108,
    "zcip": 0.038,
    "fetcher_ctrl": 0.0562,
}

#: On-chip power shares (Fig. 18 right).
POWER_SHARES = {
    "pe_array": 0.576,
    "data_dispatcher": 0.244,
    "sram": 0.118,
    "zcip": 0.027,
    "fetcher_ctrl": 0.035,
}

#: Published system points of Table III used for the comparison rows.
TABLE_III_ROWS = {
    "Stripes": {"tech_nm": 65, "area_mm2": 122.1, "power_w": None,
                "sparsity": "-"},
    "Pragmatic": {"tech_nm": 65, "area_mm2": 157.0, "power_w": 51.6,
                  "sparsity": "W/A bit"},
    "SCNN": {"tech_nm": 16, "area_mm2": 7.9, "power_w": None,
             "sparsity": "W/A value"},
    "Bitlet": {"tech_nm": 28, "area_mm2": 1.54, "power_w": 0.366,
               "sparsity": "W. bit"},
    "HUAA": {"tech_nm": 28, "area_mm2": 7.81, "power_w": None,
             "sparsity": "-"},
}


@dataclass(frozen=True)
class SystemSpecs:
    """BitWave's Table III column."""

    technology_nm: int
    frequency_mhz: float
    voltage_v: float
    power_mw: float
    peak_gops: float
    energy_efficiency_tops_w: float
    area_mm2: float

    @property
    def area_efficiency_gops_w_mm2(self) -> float:
        return (self.energy_efficiency_tops_w * 1000.0) / self.area_mm2


def bitwave_area_breakdown(
    n_bce: int = N_BCE, sram_kb: int = SRAM_KB
) -> dict[str, float]:
    """Component areas in mm^2, scaling SRAM and PE array with config."""
    base = {k: v * TOTAL_AREA_MM2 for k, v in AREA_SHARES.items()}
    base["sram"] *= sram_kb / SRAM_KB
    base["pe_array"] *= n_bce / N_BCE
    base["data_dispatcher"] *= n_bce / N_BCE
    return base


def bitwave_power_breakdown(
    n_bce: int = N_BCE, sram_kb: int = SRAM_KB
) -> dict[str, float]:
    """Component powers in mW (ResNet18 operating point)."""
    base = {k: v * TOTAL_POWER_MW for k, v in POWER_SHARES.items()}
    base["sram"] *= sram_kb / SRAM_KB
    base["pe_array"] *= n_bce / N_BCE
    base["data_dispatcher"] *= n_bce / N_BCE
    return base


def pe_type_comparison() -> dict[str, dict[str, float]]:
    """Table IV: the three PE types at one 8x8-MAC-equivalent each.

    Legacy view of the published 250 MHz point; parametrized callers
    should use :meth:`repro.arch.TechSpec.pe_type_table`, which derives
    the same milliwatts from the unit energies x clock (bit-identical
    at the default technology point, pinned by tests/arch).
    """
    return {name: dict(values) for name, values in PE_TYPES.items()}


def system_specs() -> SystemSpecs:
    """BitWave's system point (Table III, rightmost column).

    Peak performance counts one MAC as two operations across the 512
    BCEs at 250 MHz, derated by the paper's effective-peak factor
    (215.6 GOPS published vs. 256 GOPS raw: the weight-port bandwidth
    ceiling documented in Table I keeps a slice of the array idle even
    at peak).
    """
    raw_gops = 2.0 * N_BCE * CLOCK_MHZ / 1000.0
    effective_factor = 215.6 / 256.0
    peak = raw_gops * effective_factor
    efficiency = peak / TOTAL_POWER_MW  # GOPS / mW == TOPS / W
    return SystemSpecs(
        technology_nm=16,
        frequency_mhz=CLOCK_MHZ,
        voltage_v=0.8,
        power_mw=TOTAL_POWER_MW,
        peak_gops=peak,
        energy_efficiency_tops_w=efficiency,
        area_mm2=TOTAL_AREA_MM2,
    )
