"""The in-memory hot tier fronting the persistent result stores.

A plain LRU over deserialized :class:`~repro.eval.result.EvalResult`
objects, keyed by the request's config hash.  The service consults it
before touching the fcntl-locked on-disk store, so a popular request
costs a dict lookup instead of a file scan + deserialization.

Thread-safe: the service reads it from the event loop and fills it
from the batch-execution thread, so every operation holds one lock.
``max_entries=0`` disables the tier entirely (every request goes to
the store), which is also how the tests pin the store-hit path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.eval.result import EvalResult

#: Default capacity of the hot tier, in results.
DEFAULT_HOT_MAX = 1024


class HotCache:
    """A bounded LRU of evaluation results, keyed by config hash."""

    def __init__(self, max_entries: int = DEFAULT_HOT_MAX) -> None:
        if max_entries < 0:
            raise ValueError(
                f"hot-cache max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, EvalResult]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> EvalResult | None:
        """The cached result for ``key`` (refreshing its recency)."""
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
            return result

    def put(self, key: str, result: EvalResult) -> None:
        """Install ``key``'s result, evicting the coldest past capacity."""
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self) -> tuple[str, ...]:
        """Current keys, coldest first (a snapshot, for introspection)."""
        with self._lock:
            return tuple(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
