"""``python -m repro.serve``: run the always-on evaluation service.

Examples::

    # Serve the default store root on localhost:8351, inline compute.
    python -m repro.serve

    # A shared store with 4 supervised worker processes and a bigger
    # hot tier; the watchdog kills and respawns hung evaluations.
    python -m repro.serve --store /var/lib/repro --workers 4 \\
        --hot-max 4096 --timeout 600

    # Chaos drill: deterministic faults at the serve site (injected
    # crashes retry per the policy; slow_io stalls store reads).
    python -m repro.serve --inject 'seed=7,crash:0.3:site=serve'

    # Then, from any client:
    curl 'http://127.0.0.1:8351/eval?workload=cnn_lstm&backend=model'
    curl 'http://127.0.0.1:8351/metrics'

SIGINT/SIGTERM drain gracefully -- in-flight evaluations finish and
commit, new misses get 503 -- then the process exits ``128+signum``
(the shell convention for a signal-terminated run, same as the
campaign executor).  A second signal force-quits immediately.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys

from repro import faults
from repro.dse.retry import RetryPolicy
from repro.serve.cache import DEFAULT_HOT_MAX
from repro.serve.http import start_http
from repro.serve.service import DEFAULT_QUEUE_MAX, EvalService

#: Default TCP port ("serve" on a phone keypad would be overkill; this
#: is just an unassigned-registry pick that avoids the usual 8000s).
DEFAULT_PORT = 8351


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Always-on evaluation service: request coalescing, "
                    "an in-memory hot tier, and the shared result store "
                    "behind a JSON HTTP API.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default %(default)s)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help="TCP port; 0 picks an ephemeral port "
                             "(default %(default)s)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="result-store root (default: "
                             "$REPRO_DSE_STORE or ~/.cache/repro-dse)")
    parser.add_argument("--workers", type=int, default=0,
                        help="supervised worker processes per batch; 0 "
                             "evaluates inline in-process "
                             "(default %(default)s)")
    parser.add_argument("--hot-max", type=int, default=DEFAULT_HOT_MAX,
                        help="hot-tier capacity in results; 0 disables "
                             "the tier (default %(default)s)")
    parser.add_argument("--queue-max", type=int,
                        default=DEFAULT_QUEUE_MAX,
                        help="pending-miss bound before requests get "
                             "503 (default %(default)s)")
    parser.add_argument("--max-attempts", type=int, default=None,
                        help="retry budget per evaluation "
                             "(default: policy default)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-evaluation watchdog deadline "
                             "(workers >= 1 only)")
    parser.add_argument("--backoff", type=float, default=None,
                        metavar="SECONDS",
                        help="base retry backoff (default: policy "
                             "default)")
    parser.add_argument("--inject", default=None, metavar="PLAN",
                        help="arm deterministic fault injection "
                             "(repro.faults plan spec)")
    return parser


async def _serve(args: argparse.Namespace) -> int:
    """Run the service until a signal drains it; returns the exit code."""
    policy = RetryPolicy().with_overrides(
        max_attempts=args.max_attempts,
        timeout_s=args.timeout,
        backoff_s=args.backoff,
    )
    service = EvalService(
        args.store,
        workers=args.workers,
        hot_max=args.hot_max,
        queue_max=args.queue_max,
        policy=policy,
    )
    await service.start()
    server = await start_http(service, args.host, args.port)

    stop = asyncio.Event()
    got_signum = 0

    def on_signal(signum: int) -> None:
        # First signal: drain.  Second: the operator means it.
        nonlocal got_signum
        if stop.is_set():
            os._exit(128 + signum)
        got_signum = signum
        stop.set()

    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, on_signal, signum)

    sockets = server.sockets or []
    for sock in sockets:
        host, port = sock.getsockname()[:2]
        print(f"repro.serve listening on http://{host}:{port} "
              f"(store={service.store_root or 'default'}, "
              f"workers={service.workers})", file=sys.stderr, flush=True)

    try:
        await stop.wait()
        name = signal.Signals(got_signum).name
        print(f"{name}: draining (in-flight evaluations finish; "
              f"new misses get 503)...", file=sys.stderr, flush=True)
        server.close()
        await server.wait_closed()
        settled = await service.drain()
        print(f"drained {'cleanly' if settled else 'with timeouts'}; "
              f"exiting", file=sys.stderr, flush=True)
        return 128 + got_signum
    finally:
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.remove_signal_handler(signum)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.inject is not None:
        plan = faults.configure(args.inject)
        assert plan is not None
        print(f"fault injection armed: {plan.spec()}", file=sys.stderr)
    return asyncio.run(_serve(args))


if __name__ == "__main__":
    raise SystemExit(main())
