"""The always-on evaluation service: single-flight, hot tier, workers.

:class:`EvalService` answers :class:`~repro.eval.request.EvalRequest`
questions through four tiers, cheapest first:

1. **hot** -- an in-memory LRU (:class:`~repro.serve.cache.HotCache`)
   over deserialized results;
2. **in-flight coalescing** -- identical concurrent requests (same
   config-hash key) attach to the one evaluation already running
   instead of starting their own.  This is the *single-flight* layer
   that replaces :mod:`repro.eval.api`'s per-process memo, which is
   not safe for concurrent callers (see that module's docstring);
3. **store** -- the fcntl-locked persistent
   :class:`~repro.dse.store.ResultStore`, one namespace per backend
   fingerprint, shared with every campaign and CLI run;
4. **compute** -- a bounded background worker pool.  ``workers=0``
   evaluates misses inline on the dispatch thread (no subprocesses;
   the low-latency single-host mode); ``workers>=1`` fans each batch
   of misses out over the supervised, self-healing
   :class:`~repro.dse.pool.WatchdogPool`, so a crashing or hanging
   evaluation costs one worker process, never the service.

Both compute paths retry transient failures per the
:class:`~repro.dse.retry.RetryPolicy` (poison errors fail fast), and
the service process owns every store write -- worker processes only
compute, exactly like the campaign executor.

The service is asyncio-native: :meth:`EvalService.submit` is awaited
by the HTTP layer, blocking work (store reads, evaluation batches)
runs via ``asyncio.to_thread``, and draining
(:meth:`EvalService.drain`) lets in-flight evaluations finish while
new misses are rejected -- the graceful half of a SIGTERM.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro import faults
from repro.dse.pool import WatchdogPool
from repro.dse.records import make_record, result_from_dict, result_to_dict
from repro.dse.retry import RetryPolicy
from repro.dse.store import ResultStore
from repro.eval.registry import get_backend
from repro.eval.request import EvalRequest
from repro.eval.result import EvalResult
from repro.obs import flush, observe, trace
from repro.serve.cache import DEFAULT_HOT_MAX, HotCache
from repro.serve.metrics import ServeMetrics

#: Default bound on queued (accepted but not yet dispatched) misses;
#: past it the service answers 503 instead of hoarding latency.
DEFAULT_QUEUE_MAX = 64

#: Fault kinds the service worker executes at ``site=serve`` (the
#: ``slow_io`` half of the site belongs to the store-read hook).
_WORKER_FAULT_KINDS = ("crash", "hang", "die")


@dataclass(frozen=True)
class ServeJob:
    """A picklable pool task wrapping one evaluation request."""

    request: EvalRequest

    @property
    def label(self) -> str:
        return self.request.label

    def key(self) -> str:
        return self.request.key()

    def to_dict(self) -> dict[str, Any]:
        return self.request.to_dict()


@dataclass(frozen=True)
class PointFailure:
    """A worker exception payload (mirrors the campaign executor's)."""

    error: str
    etype: str = ""
    kind: str = "exception"


@dataclass(frozen=True)
class Outcome:
    """One settled request: a result, or a classified failure.

    ``source`` says which tier answered: ``hot``, ``store``,
    ``computed``, or ``coalesced`` (this caller attached to another
    request's in-flight evaluation).  On failure ``result`` is ``None``
    and ``error``/``etype``/``kind`` describe the last attempt;
    ``kind`` is ``"exception"``, a watchdog kind (``timeout``,
    ``heartbeat-silent``, ``worker-died``), ``"rejected"`` (queue
    saturated), or ``"draining"``.
    """

    key: str
    result: EvalResult | None = None
    source: str = "computed"
    attempts: int = 0
    error: str | None = None
    etype: str | None = None
    kind: str = "exception"
    poisoned: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None


def _serve_worker(job: ServeJob, attempt: int = 0) -> tuple[str, Any, float]:
    """One evaluation attempt: failure-tolerant, chaos-instrumented.

    Runs inline (``workers=0``) or inside a supervised pool worker;
    either way it never raises -- an exception becomes a
    :class:`PointFailure` payload the retry policy classifies.  The
    ``serve``-site fault hook fires here (crash/hang/die), with the
    point context bound so deep ``gemm``-site clauses key off the
    request too.
    """
    start = time.perf_counter()
    key = job.key()
    faults.set_point_context(key, attempt)
    try:
        with trace("serve.point", label=job.label, attempt=attempt):
            faults.fire("serve", kinds=_WORKER_FAULT_KINDS)
            backend = get_backend(job.request.backend)
            result = backend.evaluate(job.request)
            return key, result_to_dict(result), time.perf_counter() - start
    except Exception as exc:  # noqa: BLE001 -- any evaluation fault
        failure = PointFailure(error=f"{type(exc).__name__}: {exc}",
                               etype=type(exc).__name__)
        return key, failure, time.perf_counter() - start
    finally:
        faults.clear_point_context()
        flush()


class EvalService:
    """Single-flight cached evaluation over a persistent store root."""

    def __init__(self,
                 store_root: str | Path | None = None,
                 *,
                 workers: int = 0,
                 hot_max: int = DEFAULT_HOT_MAX,
                 queue_max: int = DEFAULT_QUEUE_MAX,
                 policy: RetryPolicy | None = None) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if queue_max < 1:
            raise ValueError(f"queue_max must be >= 1, got {queue_max}")
        self.store_root = (Path(store_root) if store_root is not None
                           else None)
        self.workers = workers
        self.queue_max = queue_max
        self.policy = policy or RetryPolicy()
        self.hot = HotCache(hot_max)
        self.metrics = ServeMetrics()
        self._stores: dict[str, ResultStore] = {}
        self._inflight: dict[str, "asyncio.Future[Outcome]"] = {}
        self._queue: "asyncio.Queue[ServeJob] | None" = None
        self._dispatcher: "asyncio.Task[None] | None" = None
        self._draining = False
        self._started_mono = time.monotonic()

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Create the miss queue and dispatcher (call once, in a loop)."""
        if self._queue is not None:
            raise RuntimeError("service already started")
        self._queue = asyncio.Queue(maxsize=self.queue_max)
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-serve-dispatch")
        self._started_mono = time.monotonic()

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self, timeout_s: float | None = 30.0) -> bool:
        """Stop taking new misses, let in-flight work finish, shut down.

        Already-queued and executing evaluations complete and commit;
        new cache misses are rejected with a ``draining`` outcome (hot
        and store tiers keep answering until shutdown).  Returns
        ``True`` if everything settled within ``timeout_s``.
        """
        self._draining = True
        deadline = (None if timeout_s is None
                    else time.monotonic() + timeout_s)
        settled = True
        while self._inflight:
            if deadline is not None and time.monotonic() > deadline:
                settled = False
                break
            await asyncio.sleep(0.02)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        return settled

    # -- the request path ------------------------------------------------
    async def submit(self, request: EvalRequest) -> Outcome:
        """Answer one request through hot -> coalesce -> store -> compute.

        Raises ``ValueError`` for an invalid request; every other
        failure mode comes back as a settled :class:`Outcome` (the HTTP
        layer maps those to status codes).
        """
        if self._queue is None:
            raise RuntimeError("service not started; await start() first")
        request.validate()
        key = request.key()
        start = time.perf_counter()
        self.metrics.incr("serve.requests")
        try:
            hot = self.hot.get(key)
            if hot is not None:
                self.metrics.incr("serve.cache.hot_hit")
                return Outcome(key=key, result=hot, source="hot")

            inflight = self._inflight.get(key)
            if inflight is not None:
                self.metrics.incr("serve.coalesced")
                outcome = await asyncio.shield(inflight)
                return replace(outcome, source="coalesced")

            future: "asyncio.Future[Outcome]" = \
                asyncio.get_running_loop().create_future()
            self._inflight[key] = future

            try:
                stored = await asyncio.to_thread(
                    self._load_stored, request, key)
                if stored is not None:
                    self.hot.put(key, stored)
                    self.metrics.incr("serve.cache.store_hit")
                    self._settle(key, Outcome(key=key, result=stored,
                                              source="store"))
                else:
                    self.metrics.incr("serve.cache.miss")
                    if self._draining:
                        self._settle(key, Outcome(
                            key=key, kind="draining",
                            error="service is draining; "
                                  "try another replica"))
                    else:
                        try:
                            self._queue.put_nowait(ServeJob(request))
                        except asyncio.QueueFull:
                            self.metrics.incr("serve.rejected")
                            self._settle(key, Outcome(
                                key=key, kind="rejected",
                                error=f"evaluation queue is saturated "
                                      f"({self.queue_max} pending)"))
            except BaseException as exc:
                # The leader must never leave coalesced waiters hanging
                # on an unsettled future (lookup error, cancellation).
                self._settle(key, Outcome(
                    key=key, error=f"{type(exc).__name__}: {exc}",
                    etype=type(exc).__name__))
                raise
            return await asyncio.shield(future)
        finally:
            elapsed = time.perf_counter() - start
            self.metrics.observe_latency(elapsed)
            observe("serve.request", elapsed, key=key)

    def _settle(self, key: str, outcome: Outcome) -> None:
        """Resolve ``key``'s future (leader and coalesced waiters)."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(outcome)

    def _store_for(self, backend_name: str) -> ResultStore:
        """This backend's fingerprint-namespaced store under the root."""
        if backend_name not in self._stores:
            self._stores[backend_name] = ResultStore(
                self.store_root,
                namespace=get_backend(backend_name).fingerprint())
        return self._stores[backend_name]

    def _load_stored(self, request: EvalRequest, key: str) -> EvalResult | None:
        """Blocking store lookup (runs off-loop; chaos-instrumented).

        A miss re-reads the backing file once before giving up: another
        process (a campaign shard, a sibling service) may have appended
        the record after this process first loaded the namespace.
        """
        if faults.serve_read_fault(key) is not None:
            self.metrics.incr("serve.faults.slow_read")
        try:
            store = self._store_for(request.backend)
            with trace("serve.store_lookup", backend=request.backend):
                result = store.result(key)
                if result is None:
                    store.refresh()
                    result = store.result(key)
            return result
        except OSError as exc:
            self.metrics.incr("serve.store_errors")
            observe("serve.store_error", 0.0, error=type(exc).__name__)
            return None

    # -- the compute path ------------------------------------------------
    async def _dispatch_loop(self) -> None:
        """Pull queued misses, run them as one batch, settle futures."""
        assert self._queue is not None
        while True:
            job = await self._queue.get()
            jobs = [job]
            while not self._queue.empty():
                jobs.append(self._queue.get_nowait())
            try:
                outcomes = await asyncio.to_thread(self._run_batch, jobs)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 -- dispatcher survives
                self.metrics.incr("serve.batch_errors")
                outcomes = {
                    j.key(): Outcome(
                        key=j.key(), attempts=1,
                        error=f"{type(exc).__name__}: {exc}",
                        etype=type(exc).__name__)
                    for j in jobs
                }
            for key, outcome in outcomes.items():
                self._settle(key, outcome)

    def _run_batch(self, jobs: list[ServeJob]) -> dict[str, Outcome]:
        """Evaluate one batch of misses (blocking; runs off-loop)."""
        by_key = {job.key(): job for job in jobs}
        if self.workers == 0:
            outcomes = {}
            for key, job in by_key.items():
                outcomes[key] = self._run_inline(job)
            return outcomes
        return self._run_pool(list(by_key.values()))

    def _run_inline(self, job: ServeJob) -> Outcome:
        """Sequential in-process evaluation with policy-driven retries.

        No subprocess, so watchdog deadlines cannot be enforced here --
        a truly hung backend stalls the dispatch thread.  ``workers>=1``
        buys the supervised pool when that matters.
        """
        key = job.key()
        last_error: str | None = None
        attempt = 0
        while True:
            _, payload, elapsed = _serve_worker(job, attempt)
            if not isinstance(payload, PointFailure):
                return self._commit(job, payload, elapsed,
                                    attempts=attempt + 1,
                                    last_error=last_error)
            last_error = payload.error
            outcome = self._classify_failure(
                key, payload, attempt, elapsed)
            if outcome is not None:
                return outcome
            time.sleep(self.policy.backoff_for(key, attempt))
            attempt += 1

    def _run_pool(self, jobs: list[ServeJob]) -> dict[str, Outcome]:
        """Fan one batch out over a supervised self-healing pool."""
        outcomes: dict[str, Outcome] = {}
        last_error: dict[str, str] = {}

        def handle(job: Any, attempt: int, key: Any, payload: Any,
                   elapsed: float, reason: str) -> float | None:
            if key is None:
                key = job.key()
            if reason != "ok":
                if reason in ("timeout", "heartbeat-silent"):
                    self.metrics.incr("serve.timed_out")
                failure = PointFailure(
                    error=f"{reason} after {elapsed:.1f}s "
                          f"(attempt {attempt + 1})",
                    etype=reason, kind=reason)
            elif isinstance(payload, PointFailure):
                failure = payload
            else:
                outcomes[key] = self._commit(
                    job, payload, elapsed, attempts=attempt + 1,
                    last_error=last_error.get(key))
                return None
            last_error[key] = failure.error
            if self.policy.is_retryable(failure.etype, failure.kind) \
                    and attempt + 1 < self.policy.max_attempts:
                return self.policy.backoff_for(key, attempt)
            outcomes[key] = self._failed(key, failure, attempt + 1)
            return None

        pool = WatchdogPool(_serve_worker, min(self.workers, len(jobs)),
                            self.policy)
        pool.run(list(jobs), handle)
        return outcomes

    def _commit(self, job: ServeJob, payload: dict[str, Any],
                elapsed: float, *, attempts: int,
                last_error: str | None) -> Outcome:
        """Persist one fresh result and fill the hot tier (terminal)."""
        key = job.key()
        result = result_from_dict(payload)
        backend = get_backend(job.request.backend)
        record = make_record(
            job, payload, elapsed, fingerprint=backend.fingerprint(),
            attempts=attempts if attempts > 1 else None,
            last_error=last_error if attempts > 1 else None)
        try:
            with trace("serve.persist", backend=job.request.backend):
                self._store_for(job.request.backend).put(key, record)
        except OSError:
            # An unwritable store costs persistence, not the answer.
            self.metrics.incr("serve.persist_failures")
        self.hot.put(key, result)
        self.metrics.incr("serve.evaluated")
        if attempts > 1:
            self.metrics.incr("serve.retried")
        if last_error is not None and "InjectedFault" in last_error:
            self.metrics.incr("serve.faults.recovered")
        return Outcome(key=key, result=result, attempts=attempts)

    def _classify_failure(self, key: str, failure: PointFailure,
                          attempt: int, elapsed: float) -> Outcome | None:
        """``None`` to retry (inline path), else the terminal outcome."""
        if self.policy.is_retryable(failure.etype, failure.kind) \
                and attempt + 1 < self.policy.max_attempts:
            observe("serve.retry.backoff",
                    self.policy.backoff_for(key, attempt),
                    key=key, attempt=attempt + 1)
            return None
        return self._failed(key, failure, attempt + 1)

    def _failed(self, key: str, failure: PointFailure,
                attempts: int) -> Outcome:
        """Account one settled failure (budget exhausted or poison)."""
        poisoned = (failure.kind == "exception"
                    and not self.policy.is_retryable(failure.etype,
                                                     failure.kind))
        self.metrics.incr("serve.failed")
        if poisoned:
            self.metrics.incr("serve.poisoned")
        if attempts > 1:
            self.metrics.incr("serve.retried")
        return Outcome(key=key, attempts=attempts, error=failure.error,
                       etype=failure.etype, kind=failure.kind,
                       poisoned=poisoned)

    # -- introspection ---------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The ``/metrics`` payload: counters, gauges, latency window."""
        return {
            "counters": self.metrics.counters(),
            "gauges": {
                "serve.inflight": len(self._inflight),
                "serve.queue_depth": (self._queue.qsize()
                                      if self._queue is not None else 0),
                "serve.hot_entries": len(self.hot),
                "serve.hot_max": self.hot.max_entries,
                "serve.workers": self.workers,
                "serve.uptime_s": time.monotonic() - self._started_mono,
                "serve.draining": int(self._draining),
            },
            "latency": self.metrics.latency(),
        }

    def health(self) -> dict[str, Any]:
        """The ``/healthz`` payload (status + load gauges)."""
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": time.monotonic() - self._started_mono,
            "in_flight": len(self._inflight),
            "queue_depth": (self._queue.qsize()
                            if self._queue is not None else 0),
            "workers": self.workers,
            "hot_entries": len(self.hot),
        }
