"""A hand-rolled asyncio HTTP/1.1 front end for the evaluation service.

Stdlib-only by design (``asyncio.start_server`` + manual request
parsing): the service must run anywhere the reproduction runs.  One
request per connection (``Connection: close``), JSON in and out.

Endpoints::

    GET  /eval?workload=W[&accelerator=A][&variant=V][&backend=B]
              [&arch=SPEC][&batch=N][&sim_max_contexts=N]
    POST /eval/batch        {"requests": [<EvalRequest dict>, ...]}
    GET  /summary?[name=&accelerators=&networks=&variants=&backends=&archs=]
    GET  /pareto?[x=cycles&y=energy&<grid params>]
    GET  /healthz
    GET  /metrics
    GET  /  (or /dashboard)  -- the static HTML dashboard

Status codes: 200 answered, 400 bad request, 404 unknown path,
405 wrong method, 413 oversized body, 422 poison evaluation (the
request is deterministic-broken; retrying cannot help), 500 evaluation
failed after the retry budget, 503 queue saturated or draining.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Mapping
from urllib.parse import parse_qs, urlsplit

from repro.dse.spec import CampaignSpec, paper_grid
from repro.dse.store import ResultStore
from repro.dse.summary import METRICS, pareto_data, summary_data
from repro.eval.request import EvalOptions, EvalRequest
from repro.serve.dashboard import DASHBOARD_HTML
from repro.serve.service import EvalService, Outcome

#: Hard parse limits: a service facing a network owes itself bounds.
MAX_REQUEST_LINE = 8192
MAX_HEADERS = 64
MAX_BODY_BYTES = 1 << 22  # 4 MiB of batch JSON is plenty
READ_TIMEOUT_S = 30.0

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class HttpError(Exception):
    """An error with a definite HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def outcome_status(outcome: Outcome) -> int:
    """The HTTP status an evaluation outcome maps to."""
    if outcome.ok:
        return 200
    if outcome.kind in ("rejected", "draining"):
        return 503
    if outcome.poisoned:
        return 422
    return 500


def outcome_payload(outcome: Outcome) -> dict[str, Any]:
    """The JSON body for one settled evaluation outcome."""
    payload: dict[str, Any] = {
        "key": outcome.key,
        "source": outcome.source,
        "attempts": outcome.attempts,
    }
    if outcome.ok:
        assert outcome.result is not None
        payload["result"] = outcome.result.to_dict()
    else:
        payload.update({
            "error": outcome.error,
            "etype": outcome.etype,
            "kind": outcome.kind,
            "poisoned": outcome.poisoned,
            "last_error": outcome.error,
        })
    return payload


def _first(query: Mapping[str, list[str]], name: str,
           default: str | None = None) -> str | None:
    values = query.get(name)
    return values[0] if values else default


def _int_param(query: Mapping[str, list[str]], name: str,
               default: int) -> int:
    raw = _first(query, name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise HttpError(400, f"query parameter {name!r} must be an "
                             f"integer, got {raw!r}") from None


def request_from_query(query: Mapping[str, list[str]]) -> EvalRequest:
    """Build an :class:`EvalRequest` from ``/eval`` query parameters."""
    workload = _first(query, "workload")
    if not workload:
        raise HttpError(400, "missing required query parameter 'workload'")
    defaults = EvalOptions()
    kwargs: dict[str, Any] = {
        "workload": workload,
        "options": EvalOptions(
            batch=_int_param(query, "batch", defaults.batch),
            sim_max_contexts=_int_param(query, "sim_max_contexts",
                                        defaults.sim_max_contexts)),
    }
    for name in ("accelerator", "variant", "backend", "arch"):
        value = _first(query, name)
        if value is not None:
            kwargs[name] = value
    return EvalRequest(**kwargs)


def request_from_dict(data: Any) -> EvalRequest:
    """Build an :class:`EvalRequest` from one ``/eval/batch`` entry."""
    if not isinstance(data, Mapping):
        raise HttpError(400, f"batch entries must be objects, got "
                             f"{type(data).__name__}")
    if "workload" not in data:
        raise HttpError(400, "batch entry missing required key 'workload'")
    try:
        return EvalRequest.from_dict(data)
    except (TypeError, ValueError) as exc:
        raise HttpError(400, f"bad batch entry: {exc}") from None


def spec_from_query(query: Mapping[str, list[str]]) -> CampaignSpec:
    """The campaign grid a ``/summary`` / ``/pareto`` call reports over.

    Axes arrive as CSV query parameters mirroring the ``repro.dse``
    CLI; with no axes at all, the full paper grid is the default view.
    """
    def csv(name: str) -> tuple[str, ...]:
        raw = _first(query, name, "")
        assert raw is not None
        return tuple(part for part in raw.split(",") if part)

    name = _first(query, "name", "serve") or "serve"
    axes = {axis: csv(axis) for axis in
            ("accelerators", "networks", "variants", "backends", "archs")}
    if not any(axes.values()):
        return paper_grid(name)
    spec = CampaignSpec(
        name=name,
        accelerators=axes["accelerators"],
        networks=axes["networks"],
        variants=axes["variants"],
        backends=axes["backends"] or ("model",),
        archs=axes["archs"],
    )
    spec.validate()
    return spec


class HttpFrontend:
    """Routes parsed HTTP requests onto one :class:`EvalService`."""

    def __init__(self, service: EvalService) -> None:
        self.service = service

    # -- endpoint handlers ----------------------------------------------
    async def _eval(self, query: Mapping[str, list[str]]
                    ) -> tuple[int, Any]:
        try:
            request = request_from_query(query)
            outcome = await self.service.submit(request)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        return outcome_status(outcome), outcome_payload(outcome)

    async def _eval_batch(self, body: bytes) -> tuple[int, Any]:
        try:
            data = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"bad JSON body: {exc}") from None
        entries = data.get("requests") if isinstance(data, Mapping) else data
        if not isinstance(entries, list) or not entries:
            raise HttpError(400, "body must be a non-empty JSON list (or "
                                 "{'requests': [...]}) of request objects")
        requests = [request_from_dict(entry) for entry in entries]

        async def one(request: EvalRequest) -> dict[str, Any]:
            try:
                outcome = await self.service.submit(request)
            except ValueError as exc:
                return {"ok": False, "status": 400, "error": str(exc)}
            payload = outcome_payload(outcome)
            payload.update({"ok": outcome.ok,
                            "status": outcome_status(outcome)})
            return payload

        results = await asyncio.gather(*(one(r) for r in requests))
        return 200, {"count": len(results), "results": list(results)}

    def _base_store(self) -> ResultStore:
        return ResultStore(self.service.store_root)

    async def _summary(self, query: Mapping[str, list[str]]
                       ) -> tuple[int, Any]:
        try:
            spec = spec_from_query(query)
            rows = await asyncio.to_thread(
                summary_data, spec, self._base_store())
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        return 200, {"campaign": spec.name, "points": len(rows),
                     "rows": rows}

    async def _pareto(self, query: Mapping[str, list[str]]
                      ) -> tuple[int, Any]:
        x = _first(query, "x", "cycles") or "cycles"
        y = _first(query, "y", "energy") or "energy"
        if x not in METRICS or y not in METRICS:
            raise HttpError(400, f"pareto objectives must be one of "
                                 f"{sorted(METRICS)}; got x={x!r} y={y!r}")
        try:
            spec = spec_from_query(query)
            rows = await asyncio.to_thread(
                pareto_data, spec, self._base_store(), x, y)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from None
        return 200, {"campaign": spec.name, "x": x, "y": y,
                     "points": len(rows), "rows": rows}

    # -- dispatch --------------------------------------------------------
    async def dispatch(self, method: str, path: str,
                       query: Mapping[str, list[str]],
                       body: bytes) -> tuple[int, Any, str]:
        """Route one request; returns (status, payload, content type)."""
        if path in ("/", "/dashboard"):
            if method != "GET":
                raise HttpError(405, f"{path} supports GET only")
            return 200, DASHBOARD_HTML, "text/html; charset=utf-8"
        if path == "/eval/batch":
            if method != "POST":
                raise HttpError(405, "/eval/batch supports POST only")
            status, payload = await self._eval_batch(body)
            return status, payload, "application/json"
        if method != "GET":
            raise HttpError(405, f"{path} supports GET only")
        if path == "/eval":
            status, payload = await self._eval(query)
        elif path == "/summary":
            status, payload = await self._summary(query)
        elif path == "/pareto":
            status, payload = await self._pareto(query)
        elif path == "/healthz":
            payload = self.service.health()
            status = 503 if self.service.draining else 200
        elif path == "/metrics":
            status, payload = 200, self.service.snapshot()
        else:
            raise HttpError(404, f"unknown path {path!r}")
        return status, payload, "application/json"

    # -- wire protocol ---------------------------------------------------
    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """One connection: parse one request, answer it, close."""
        try:
            try:
                method, path, query, body = await asyncio.wait_for(
                    _read_request(reader), READ_TIMEOUT_S)
            except asyncio.TimeoutError:
                _write_response(writer, 408,
                                {"error": "request read timed out"})
                return
            except HttpError as exc:
                _write_response(writer, exc.status, {"error": exc.message})
                return
            except (ConnectionError, asyncio.IncompleteReadError):
                return  # client went away mid-request
            try:
                status, payload, ctype = await self.dispatch(
                    method, path, query, body)
            except HttpError as exc:
                self.service.metrics.incr("serve.http.errors")
                _write_response(writer, exc.status, {"error": exc.message})
                return
            except Exception as exc:  # noqa: BLE001 -- connection survives
                self.service.metrics.incr("serve.http.errors")
                _write_response(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"})
                return
            _write_response(writer, status, payload, ctype)
        finally:
            try:
                await writer.drain()
            except (ConnectionError, asyncio.CancelledError):
                pass
            writer.close()


async def _read_request(reader: asyncio.StreamReader
                        ) -> tuple[str, str, dict[str, list[str]], bytes]:
    """Parse one HTTP/1.1 request head + body from the stream."""
    line = await reader.readline()
    if not line:
        raise ConnectionError("empty request")
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    try:
        method, target, _version = line.decode("latin-1").split()
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADERS):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        if len(raw) > MAX_REQUEST_LINE:
            raise HttpError(400, "header line too long")
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, f"too many headers (max {MAX_HEADERS})")
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, "bad Content-Length") from None
        if n > MAX_BODY_BYTES:
            raise HttpError(413, f"body too large (max {MAX_BODY_BYTES})")
        body = await reader.readexactly(n)
    split = urlsplit(target)
    query = parse_qs(split.query, keep_blank_values=True)
    return method.upper(), split.path or "/", query, body


def _write_response(writer: asyncio.StreamWriter, status: int,
                    payload: Any,
                    content_type: str = "application/json") -> None:
    """Serialize one response (JSON unless told otherwise) and send it."""
    if isinstance(payload, str):
        body = payload.encode("utf-8")
    else:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n").encode("latin-1")
    writer.write(head + body)


async def start_http(service: EvalService, host: str = "127.0.0.1",
                     port: int = 0) -> asyncio.AbstractServer:
    """Bind the HTTP front end; ``port=0`` picks an ephemeral port."""
    frontend = HttpFrontend(service)
    return await asyncio.start_server(frontend.handle, host, port)
