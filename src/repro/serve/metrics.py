"""In-memory service metrics behind ``GET /metrics``.

The service keeps its own thread-safe counter registry so ``/metrics``
can answer instantly from memory; every increment is mirrored to
:mod:`repro.obs`, so a traced service run (``REPRO_TRACE``) leaves the
same ``serve.*`` counters in its trace files for ``python -m repro.obs
report`` -- one name, two sinks.

Latency is tracked as a bounded reservoir of the most recent request
durations; ``/metrics`` reports count/mean/p50/p95/max over that
window, which is what an operator actually wants from an always-on
service (recent behavior, not lifetime averages).
"""

from __future__ import annotations

import threading
from collections import deque

from repro import obs

#: Request latencies retained for the percentile window.
LATENCY_WINDOW = 1024


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]


class ServeMetrics:
    """Thread-safe counters + a latency reservoir for one service."""

    def __init__(self, window: int = LATENCY_WINDOW) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._latencies: "deque[float]" = deque(maxlen=window)

    def incr(self, name: str, n: int = 1) -> None:
        """Count ``n`` occurrences of ``name`` (mirrored to repro.obs)."""
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + n
        obs.counter(name, n=n)

    def observe_latency(self, seconds: float) -> None:
        """Record one finished request's wall-clock duration."""
        with self._lock:
            self._latencies.append(seconds)

    def count(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def counters(self) -> dict[str, int]:
        """A snapshot of every counter, sorted by name."""
        with self._lock:
            return dict(sorted(self._counts.items()))

    def latency(self) -> dict[str, float | int]:
        """count/mean/p50/p95/max (milliseconds) over the window."""
        with self._lock:
            window = list(self._latencies)
        if not window:
            return {"count": 0}
        ordered = sorted(window)
        return {
            "count": len(ordered),
            "mean_ms": 1e3 * sum(ordered) / len(ordered),
            "p50_ms": 1e3 * _percentile(ordered, 0.50),
            "p95_ms": 1e3 * _percentile(ordered, 0.95),
            "max_ms": 1e3 * ordered[-1],
        }
