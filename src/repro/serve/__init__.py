"""repro.serve: the always-on asynchronous evaluation service.

Everything the reproduction computes is keyed by
:meth:`repro.eval.request.EvalRequest.key` and persisted in the
fcntl-locked :class:`~repro.dse.store.ResultStore`; this package puts
a long-running service in front of that cache so many clients (plot
scripts, CI jobs, notebook sessions) share one warm process instead of
each paying cold-start profiling and store scans.

Layers, bottom up:

- :mod:`repro.serve.cache` -- the in-memory LRU hot tier;
- :mod:`repro.serve.metrics` -- thread-safe counters + a latency
  window behind ``GET /metrics``, mirrored to :mod:`repro.obs`;
- :mod:`repro.serve.service` -- :class:`EvalService`: single-flight
  request coalescing, hot/store/compute tiers, retries via
  :class:`~repro.dse.retry.RetryPolicy`, and an optional supervised
  :class:`~repro.dse.pool.WatchdogPool` for process-isolated workers;
- :mod:`repro.serve.http` -- a stdlib asyncio HTTP/1.1 front end
  (``/eval``, ``/eval/batch``, ``/summary``, ``/pareto``,
  ``/healthz``, ``/metrics``, and a static dashboard);
- ``python -m repro.serve`` -- the CLI entry point with graceful
  SIGINT/SIGTERM draining.

The service is the supported way to evaluate concurrently: the
in-process memo in :mod:`repro.eval.api` is neither thread- nor
task-safe (see its docstring), and the service's single-flight layer
is the replacement.
"""

from repro.serve.cache import DEFAULT_HOT_MAX, HotCache
from repro.serve.http import HttpFrontend, start_http
from repro.serve.metrics import ServeMetrics
from repro.serve.service import (
    DEFAULT_QUEUE_MAX,
    EvalService,
    Outcome,
    ServeJob,
)

__all__ = [
    "DEFAULT_HOT_MAX",
    "DEFAULT_QUEUE_MAX",
    "EvalService",
    "HotCache",
    "HttpFrontend",
    "Outcome",
    "ServeJob",
    "ServeMetrics",
    "start_http",
]
