"""The static HTML dashboard served at ``/`` and ``/dashboard``.

One self-contained page (no external assets, no build step) that polls
the service's own JSON endpoints -- ``/healthz``, ``/metrics``,
``/summary``, ``/pareto`` -- and renders them as tables.  It is a
window onto the JSON API, not a separate data path: everything shown
here is exactly one ``curl`` away.
"""

from __future__ import annotations

DASHBOARD_HTML = """\
<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro.serve dashboard</title>
<style>
  body { font-family: ui-monospace, Menlo, Consolas, monospace;
         margin: 2rem; background: #101418; color: #d8dee6; }
  h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.6rem; }
  table { border-collapse: collapse; margin-top: .5rem; }
  th, td { border: 1px solid #2c3440; padding: .25rem .6rem;
           text-align: left; font-size: .85rem; }
  th { background: #1a2028; }
  td.num { text-align: right; font-variant-numeric: tabular-nums; }
  #status { padding: .2rem .6rem; border-radius: .3rem; }
  #status.ok { background: #1e4620; } #status.bad { background: #5a1e1e; }
  .muted { color: #7a8494; font-size: .8rem; }
</style>
</head>
<body>
<h1>repro.serve
  <span id="status" class="ok">...</span>
  <span class="muted" id="uptime"></span></h1>
<p class="muted">Always-on evaluation service: hot cache &rarr;
coalescing &rarr; store &rarr; workers.  Auto-refreshes every 2s from
<code>/healthz</code> and <code>/metrics</code>; grid tables load from
<code>/summary</code> and <code>/pareto</code> on demand.</p>

<h2>Counters</h2><table id="counters"></table>
<h2>Gauges</h2><table id="gauges"></table>
<h2>Latency (recent window)</h2><table id="latency"></table>

<h2>Campaign summary
  <button onclick="loadSummary()">load /summary</button></h2>
<table id="summary"></table>
<h2>Pareto frontier (cycles vs energy)
  <button onclick="loadPareto()">load /pareto</button></h2>
<table id="pareto"></table>

<script>
function fill(id, rows, headers) {
  const table = document.getElementById(id);
  if (!rows.length) { table.innerHTML = "<tr><td>(empty)</td></tr>"; return; }
  const cols = headers || Object.keys(rows[0]);
  let html = "<tr>" + cols.map(c => `<th>${c}</th>`).join("") + "</tr>";
  for (const row of rows) {
    html += "<tr>" + cols.map(c => {
      const v = row[c];
      const num = typeof v === "number";
      const text = num ? (Number.isInteger(v) ? v : v.toPrecision(5)) : v;
      return `<td class="${num ? "num" : ""}">${text}</td>`;
    }).join("") + "</tr>";
  }
  table.innerHTML = html;
}
function pairs(obj) {
  return Object.entries(obj).map(([name, value]) => ({name, value}));
}
async function refresh() {
  try {
    const health = await (await fetch("/healthz")).json();
    const status = document.getElementById("status");
    status.textContent = health.status;
    status.className = health.status === "ok" ? "ok" : "bad";
    document.getElementById("uptime").textContent =
      `up ${health.uptime_s.toFixed(0)}s | in-flight ${health.in_flight}` +
      ` | queue ${health.queue_depth}`;
    const metrics = await (await fetch("/metrics")).json();
    fill("counters", pairs(metrics.counters), ["name", "value"]);
    fill("gauges", pairs(metrics.gauges), ["name", "value"]);
    fill("latency", pairs(metrics.latency), ["name", "value"]);
  } catch (err) {
    const status = document.getElementById("status");
    status.textContent = "unreachable"; status.className = "bad";
  }
}
async function loadSummary() {
  const data = await (await fetch("/summary")).json();
  fill("summary", data.rows);
}
async function loadPareto() {
  const data = await (await fetch("/pareto")).json();
  fill("pareto", data.rows);
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
"""
