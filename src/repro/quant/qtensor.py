"""Quantized tensor container."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QTensor:
    """A symmetric-quantized integer tensor with its scale.

    ``float value = values * scale``.  ``bits`` records the nominal
    precision (8 for Int8; lower after :func:`repro.quant.ptq_reduce_bits`).
    """

    values: np.ndarray
    scale: float
    bits: int = 8

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if not 1 <= self.bits <= 8:
            raise ValueError(f"bits must be in [1, 8], got {self.bits}")

    def dequantize(self) -> np.ndarray:
        return self.values.astype(np.float32) * np.float32(self.scale)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.values.shape)

    def with_values(self, values: np.ndarray) -> "QTensor":
        """Same scale/precision, new integer payload (e.g. after Bit-Flip)."""
        if values.shape != self.values.shape:
            raise ValueError(
                f"shape mismatch: {values.shape} vs {self.values.shape}")
        return QTensor(values=values, scale=self.scale, bits=self.bits)
