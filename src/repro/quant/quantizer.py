"""Symmetric Int8 quantization and the sub-8-bit PTQ baseline.

The paper quantizes fp32 weights with "PyTorch's common post-training
quantization framework": symmetric per-tensor Int8 over [-127, 127]
(symmetric so every value has a sign-magnitude encoding).

``ptq_reduce_bits`` implements the Int8+PTQ comparison of Fig. 6(e)-(h):
reducing precision below 8 bits by re-quantizing with a coarser step --
equivalently truncating LSBs across the whole tensor -- which achieves
the same compression ratio as storing fewer bits per weight.
"""

from __future__ import annotations

import numpy as np

from repro.quant.qtensor import QTensor

INT8_LEVELS = 127


def quantize_symmetric(
    weights: np.ndarray, amax: float | None = None
) -> QTensor:
    """Quantize float weights to symmetric Int8 in [-127, 127]."""
    weights = np.asarray(weights, dtype=np.float64)
    if amax is None:
        amax = float(np.abs(weights).max()) if weights.size else 1.0
    if amax <= 0:
        amax = 1.0
    scale = amax / INT8_LEVELS
    values = np.clip(np.round(weights / scale), -INT8_LEVELS, INT8_LEVELS)
    return QTensor(values=values.astype(np.int8), scale=scale, bits=8)


def dequantize(qtensor: QTensor) -> np.ndarray:
    return qtensor.dequantize()


def ptq_reduce_bits(qtensor: QTensor, bits: int) -> QTensor:
    """Re-quantize an Int8 tensor to ``bits`` bits (MSB-preserving).

    The integer grid is coarsened by ``2**(8 - bits)``; the stored values
    stay in the Int8 range so that the compression ratio is exactly
    ``8 / bits`` when packed at ``bits`` bits per weight.
    """
    if not 1 <= bits <= 8:
        raise ValueError(f"bits must be in [1, 8], got {bits}")
    if bits == 8:
        return qtensor
    step = 1 << (8 - bits)
    levels = (INT8_LEVELS + 1) // step - 1  # e.g. 7 for 4 bits
    coarse = np.clip(
        np.round(qtensor.values.astype(np.int32) / step), -levels, levels)
    values = (coarse * step).astype(np.int8)
    return QTensor(values=values, scale=qtensor.scale, bits=bits)
