"""Range observers for post-training quantization.

An observer watches one or more tensors and proposes the clipping range
used to derive a quantization scale.  ``MinMaxObserver`` is PyTorch's
default PTQ observer; ``PercentileObserver`` clips outliers, which is
the common remedy for activation-range blowup.
"""

from __future__ import annotations

import numpy as np


class MinMaxObserver:
    """Tracks the symmetric absolute maximum of observed tensors."""

    def __init__(self) -> None:
        self._amax = 0.0
        self._count = 0

    def observe(self, tensor: np.ndarray) -> None:
        if tensor.size:
            self._amax = max(self._amax, float(np.abs(tensor).max()))
            self._count += 1

    @property
    def observed(self) -> bool:
        return self._count > 0

    def range(self) -> float:
        """The symmetric clipping range [-range, +range]."""
        if not self.observed:
            raise RuntimeError("observer has seen no tensors")
        return self._amax if self._amax > 0 else 1.0


class PercentileObserver:
    """Clips the range at a percentile of observed absolute values."""

    def __init__(self, percentile: float = 99.9, max_samples: int = 1 << 20) -> None:
        if not 0 < percentile <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        self.percentile = percentile
        self.max_samples = max_samples
        self._samples: list[np.ndarray] = []

    def observe(self, tensor: np.ndarray) -> None:
        if not tensor.size:
            return
        flat = np.abs(np.asarray(tensor, dtype=np.float64)).reshape(-1)
        if flat.size > self.max_samples:
            stride = flat.size // self.max_samples + 1
            flat = flat[::stride]
        self._samples.append(flat)

    @property
    def observed(self) -> bool:
        return bool(self._samples)

    def range(self) -> float:
        if not self.observed:
            raise RuntimeError("observer has seen no tensors")
        merged = np.concatenate(self._samples)
        value = float(np.percentile(merged, self.percentile))
        return value if value > 0 else 1.0
