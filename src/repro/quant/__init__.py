"""Int8 post-training quantization (PTQ) for the NumPy substrate."""

from repro.quant.observers import MinMaxObserver, PercentileObserver
from repro.quant.qtensor import QTensor
from repro.quant.quantizer import (
    dequantize,
    ptq_reduce_bits,
    quantize_symmetric,
)

__all__ = [
    "MinMaxObserver",
    "PercentileObserver",
    "QTensor",
    "dequantize",
    "ptq_reduce_bits",
    "quantize_symmetric",
]
