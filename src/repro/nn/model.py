"""Model base class and the quantized-layer protocol.

A :class:`Model` is a named registry of layers with a ``forward`` method.
Weighted layers implement the :class:`QuantizedLayer` interface which
exposes their Int8 payload in *group-axis layout*: a 2-D view whose
innermost axis walks consecutive input channels of one kernel -- the
axis BitWave forms its bit-column groups along (paper Section III-A).

The Bit-Flip experiments work purely through ``weights_int8()`` /
``set_weights_int8()`` round-trips, so they stay agnostic of layer
internals.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.quant.qtensor import QTensor


class QuantizedLayer:
    """Mixin for layers carrying an Int8 weight payload.

    Subclasses must set ``self.qweight`` (a :class:`QTensor` in the
    layer's natural layout) and implement the two layout hooks.
    """

    qweight: QTensor

    def packed_weights(self) -> np.ndarray:
        """Int8 weights in group-axis layout (input channels innermost)."""
        raise NotImplementedError

    def set_packed_weights(self, packed: np.ndarray) -> None:
        """Inverse of :meth:`packed_weights`."""
        raise NotImplementedError

    @property
    def weight(self) -> np.ndarray:
        """Dequantized float32 weights used by ``forward``."""
        return self.qweight.dequantize()

    @property
    def weight_count(self) -> int:
        return int(np.prod(self.qweight.shape))


class Model:
    """Ordered registry of named layers with quantized-weight plumbing."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._layers: dict[str, object] = {}

    def add(self, name: str, layer: object) -> object:
        if name in self._layers:
            raise ValueError(f"duplicate layer name {name!r}")
        self._layers[name] = layer
        return layer

    def layer(self, name: str) -> object:
        return self._layers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def named_layers(self) -> Iterator[tuple[str, object]]:
        yield from self._layers.items()

    def named_quantized_layers(self) -> Iterator[tuple[str, QuantizedLayer]]:
        for name, layer in self._layers.items():
            if isinstance(layer, QuantizedLayer):
                yield name, layer

    def weights_int8(self) -> dict[str, np.ndarray]:
        """Snapshot of all Int8 weights in group-axis layout."""
        return {
            name: layer.packed_weights()
            for name, layer in self.named_quantized_layers()
        }

    def set_weights_int8(self, weights: dict[str, np.ndarray]) -> None:
        """Install (possibly bit-flipped) Int8 weights; unknown names error."""
        layers = dict(self.named_quantized_layers())
        unknown = set(weights) - set(layers)
        if unknown:
            raise KeyError(f"unknown quantized layers: {sorted(unknown)}")
        for name, packed in weights.items():
            layers[name].set_packed_weights(packed)

    def weight_counts(self) -> dict[str, int]:
        return {
            name: layer.weight_count
            for name, layer in self.named_quantized_layers()
        }

    @property
    def total_weights(self) -> int:
        return sum(self.weight_counts().values())

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)
