"""Multi-head self-attention and the transformer encoder block (BERT).

Every projection (Q, K, V, output, and the two FFN matrices) is a
quantized :class:`~repro.nn.layers.Linear`, so the whole encoder stack
is visible to Bit-Flip -- matching the paper's BERT-Base experiments
where ``bert.encoder.layer.N`` weights are flipped per layer.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import GELU, LayerNorm, Linear


class MultiHeadSelfAttention:
    def __init__(
        self,
        dim: int,
        num_heads: int,
        seed: tuple[object, ...] = ("mhsa",),
    ) -> None:
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query = Linear(dim, dim, seed=seed + ("q",))
        self.key = Linear(dim, dim, seed=seed + ("k",))
        self.value = Linear(dim, dim, seed=seed + ("v",))
        self.out = Linear(dim, dim, seed=seed + ("o",))

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.head_dim).transpose(
            0, 2, 1, 3)

    def forward(self, x: np.ndarray) -> np.ndarray:
        q = self._split_heads(self.query.forward(x))
        k = self._split_heads(self.key.forward(x))
        v = self._split_heads(self.value.forward(x))
        scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(self.head_dim)
        attn = F.softmax(scores, axis=-1)
        context = attn @ v  # (b, h, t, hd)
        b, h, t, hd = context.shape
        merged = context.transpose(0, 2, 1, 3).reshape(b, t, h * hd)
        return self.out.forward(merged)

    def projections(self) -> dict[str, Linear]:
        return {
            "query": self.query, "key": self.key,
            "value": self.value, "output": self.out,
        }


class TransformerEncoderLayer:
    """Pre-LN-free (original BERT post-LN) encoder block."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        ffn_dim: int,
        seed: tuple[object, ...] = ("encoder",),
    ) -> None:
        self.attention = MultiHeadSelfAttention(dim, num_heads, seed + ("attn",))
        self.ln1 = LayerNorm(dim)
        self.ffn_in = Linear(dim, ffn_dim, seed=seed + ("ffn_in",))
        self.ffn_act = GELU()
        self.ffn_out = Linear(ffn_dim, dim, seed=seed + ("ffn_out",))
        self.ln2 = LayerNorm(dim)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.ln1.forward(x + self.attention.forward(x))
        ffn = self.ffn_out.forward(self.ffn_act.forward(self.ffn_in.forward(x)))
        return self.ln2.forward(x + ffn)

    def quantized_sublayers(self) -> dict[str, Linear]:
        layers = {
            f"attention.{k}": v for k, v in self.attention.projections().items()
        }
        layers["ffn.intermediate"] = self.ffn_in
        layers["ffn.output"] = self.ffn_out
        return layers
