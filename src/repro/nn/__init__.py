"""Pure-NumPy DNN inference substrate.

The paper evaluates BitWave on Int8-quantized ResNet18, MobileNetV2,
CNN-LSTM and BERT-Base.  The original study ran PyTorch; this substrate
re-implements the required inference operators from scratch in NumPy so
the Bit-Flip accuracy experiments run with no framework dependency
(substitution documented in DESIGN.md §2).
"""

from repro.nn import functional
from repro.nn.attention import MultiHeadSelfAttention, TransformerEncoderLayer
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
    Sigmoid,
    Tanh,
)
from repro.nn.lstm import LSTM
from repro.nn.model import Model, QuantizedLayer

__all__ = [
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "DepthwiseConv2d",
    "Embedding",
    "GELU",
    "LSTM",
    "LayerNorm",
    "Linear",
    "MaxPool2d",
    "Model",
    "MultiHeadSelfAttention",
    "QuantizedLayer",
    "ReLU",
    "ReLU6",
    "Sigmoid",
    "Tanh",
    "TransformerEncoderLayer",
    "functional",
]
