"""Weight initialization with realistic magnitude statistics.

Real pretrained conv/fc weights are near-Gaussian with fan-in-scaled
standard deviation, giving the small-magnitude-dominated Int8 histograms
the paper's Fig. 4(b) shows.  All initializers draw from seeded streams
(:func:`repro.utils.rng.seeded_rng`) so every model build is
deterministic per (model, layer) name pair.
"""

from __future__ import annotations

import numpy as np

from repro.quant.quantizer import quantize_symmetric
from repro.utils.rng import seeded_rng


def kaiming_normal(
    shape: tuple[int, ...], fan_in: int, *tokens: object
) -> np.ndarray:
    """Fan-in-scaled heavy-tailed (Laplacian) float weights.

    Pretrained networks' weights are closer to Laplacian than Gaussian;
    the heavy tail matters here because after amax-scaled quantization
    it concentrates the Int8 values near zero (the paper's Fig. 4(b)
    histogram), which drives realistic bit-column sparsity.
    """
    rng = seeded_rng("kaiming", *tokens)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.laplace(0.0, std / np.sqrt(2.0), size=shape)


def quantized_kaiming(
    shape: tuple[int, ...], fan_in: int, *tokens: object
):
    """He-normal weights symmetric-quantized to Int8 (a :class:`QTensor`).

    A small fraction of exact zeros (~2%, mimicking pruned/dead weights
    observed in pretrained nets) is injected before quantization so the
    value-sparsity baselines in Fig. 1/Fig. 5 have non-degenerate input.
    """
    weights = kaiming_normal(shape, fan_in, *tokens)
    rng = seeded_rng("zeros", *tokens)
    zero_mask = rng.random(size=shape) < 0.02
    weights[zero_mask] = 0.0
    return quantize_symmetric(weights)
