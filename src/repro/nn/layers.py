"""Layer classes for the NumPy substrate.

Weighted layers are *born quantized*: their constructor draws realistic
float weights and immediately symmetric-quantizes to Int8, because every
experiment in the paper operates on Int8 networks.  ``forward`` runs in
float32 on the dequantized weights (Int8 x scale), exactly the numerics
of a dequantize-compute-requantize Int8 pipeline for the purposes of the
fidelity experiments.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.init import quantized_kaiming
from repro.nn.model import QuantizedLayer
from repro.utils.rng import seeded_rng


class Conv2d(QuantizedLayer):
    """Standard convolution; weight layout ``(K, C, fy, fx)``.

    Group-axis layout transposes to ``(K, fy, fx, C)`` so that the
    flattened innermost axis walks consecutive input channels of one
    kernel, matching BitWave's column grouping.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple[int, int],
        stride: int = 1,
        padding: int | tuple[int, int] = 0,
        bias: bool = True,
        seed: tuple[object, ...] = ("conv",),
    ) -> None:
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fy, fx = kernel_size
        shape = (out_channels, in_channels, fy, fx)
        fan_in = in_channels * fy * fx
        self.qweight = quantized_kaiming(shape, fan_in, *seed)
        self.bias = np.zeros(out_channels, dtype=np.float32) if bias else None

    def packed_weights(self) -> np.ndarray:
        return np.ascontiguousarray(
            self.qweight.values.transpose(0, 2, 3, 1)).reshape(
                self.out_channels, -1)

    def set_packed_weights(self, packed: np.ndarray) -> None:
        k, c, fy, fx = self.qweight.shape
        values = np.asarray(packed, dtype=np.int8).reshape(
            k, fy, fx, c).transpose(0, 3, 1, 2)
        self.qweight = self.qweight.with_values(np.ascontiguousarray(values))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding)


class DepthwiseConv2d(QuantizedLayer):
    """Depthwise convolution; weight layout ``(C, 1, fy, fx)``.

    Each kernel sees a single input channel, so the group axis is the
    kernel's spatial footprint (the dataflow BitWave serves with SU7).
    """

    def __init__(
        self,
        channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        seed: tuple[object, ...] = ("dwconv",),
    ) -> None:
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (channels, 1, kernel_size, kernel_size)
        self.qweight = quantized_kaiming(
            shape, kernel_size * kernel_size, *seed)
        self.bias = np.zeros(channels, dtype=np.float32) if bias else None

    def packed_weights(self) -> np.ndarray:
        return self.qweight.values.reshape(self.channels, -1)

    def set_packed_weights(self, packed: np.ndarray) -> None:
        values = np.asarray(packed, dtype=np.int8).reshape(self.qweight.shape)
        self.qweight = self.qweight.with_values(values)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.depthwise_conv2d(
            x, self.weight, self.bias, self.stride, self.padding)


class Linear(QuantizedLayer):
    """Fully-connected layer; weight layout ``(out, in)`` (in innermost)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        seed: tuple[object, ...] = ("linear",),
    ) -> None:
        self.in_features = in_features
        self.out_features = out_features
        self.qweight = quantized_kaiming(
            (out_features, in_features), in_features, *seed)
        self.bias = np.zeros(out_features, dtype=np.float32) if bias else None

    def packed_weights(self) -> np.ndarray:
        return self.qweight.values

    def set_packed_weights(self, packed: np.ndarray) -> None:
        values = np.asarray(packed, dtype=np.int8).reshape(self.qweight.shape)
        self.qweight = self.qweight.with_values(values)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.linear(x, self.weight, self.bias)


class Embedding(QuantizedLayer):
    """Token embedding; rows are looked up, group axis is the hidden dim."""

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        seed: tuple[object, ...] = ("embedding",),
    ) -> None:
        self.vocab_size = vocab_size
        self.dim = dim
        self.qweight = quantized_kaiming((vocab_size, dim), dim, *seed)

    def packed_weights(self) -> np.ndarray:
        return self.qweight.values

    def set_packed_weights(self, packed: np.ndarray) -> None:
        values = np.asarray(packed, dtype=np.int8).reshape(self.qweight.shape)
        self.qweight = self.qweight.with_values(values)

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        return self.weight[token_ids]


class BatchNorm2d:
    """Inference-mode batch norm with fixed statistics.

    The running statistics are drawn once per layer seed; BN parameters
    are not quantized (the paper flips conv/fc/LSTM weights only).
    """

    def __init__(self, channels: int, seed: tuple[object, ...] = ("bn",)) -> None:
        rng = seeded_rng("bn", *seed)
        self.channels = channels
        self.mean = rng.normal(0.0, 0.1, channels).astype(np.float32)
        self.var = (rng.uniform(0.5, 1.5, channels)).astype(np.float32)
        self.gamma = np.ones(channels, dtype=np.float32)
        self.beta = np.zeros(channels, dtype=np.float32)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.batch_norm2d(x, self.mean, self.var, self.gamma, self.beta)


class LayerNorm:
    def __init__(self, dim: int) -> None:
        self.dim = dim
        self.gamma = np.ones(dim, dtype=np.float32)
        self.beta = np.zeros(dim, dtype=np.float32)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.layer_norm(x, self.gamma, self.beta)


class ReLU:
    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.relu(x)


class ReLU6:
    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.relu6(x)


class GELU:
    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.gelu(x)


class Sigmoid:
    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.sigmoid(x)


class Tanh:
    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.tanh(x)


class MaxPool2d:
    def __init__(self, kernel: int, stride: int, padding: int = 0) -> None:
        self.kernel = kernel
        self.stride = stride
        self.padding = padding

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.max_pool2d(x, self.kernel, self.stride, self.padding)


class AvgPool2d:
    def __init__(self, kernel: int, stride: int) -> None:
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.avg_pool2d(x, self.kernel, self.stride)
