"""Stateless NumPy implementations of the DNN operators.

Tensor layout conventions:

- images: ``(batch, channels, height, width)`` -- NCHW, like the paper's
  loop nests (B, C/K, OY, OX);
- sequences: ``(batch, time, features)``.

``conv2d`` uses im2col + GEMM, the standard lowering; correctness is
pinned against direct convolution in the tests.
"""

from __future__ import annotations

import numpy as np


def _pair(value: int | tuple[int, int]) -> tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (value, value)


def pad2d(x: np.ndarray, padding: int | tuple[int, int]) -> np.ndarray:
    """Zero-pad the two trailing spatial dims of an NCHW tensor."""
    py, px = _pair(padding)
    if py == 0 and px == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (py, py), (px, px)))


def im2col(
    x: np.ndarray, kernel: tuple[int, int], stride: int,
    padding: int | tuple[int, int],
) -> tuple[np.ndarray, int, int]:
    """Unfold sliding windows into a matrix.

    Returns ``(cols, oh, ow)`` with ``cols`` of shape
    ``(batch, C * fy * fx, oh * ow)``.
    """
    fy, fx = kernel
    x = pad2d(x, padding)
    b, c, h, w = x.shape
    oh = (h - fy) // stride + 1
    ow = (w - fx) // stride + 1
    # Strided view: (b, c, fy, fx, oh, ow)
    sb, sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(b, c, fy, fx, oh, ow),
        strides=(sb, sc, sh, sw, sh * stride, sw * stride),
        writeable=False,
    )
    cols = view.reshape(b, c * fy * fx, oh * ow)
    return np.ascontiguousarray(cols), oh, ow


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int | tuple[int, int] = 0,
) -> np.ndarray:
    """2-D convolution; ``weight`` is ``(K, C, fy, fx)``."""
    k, c, fy, fx = weight.shape
    if x.shape[1] != c:
        raise ValueError(f"input has {x.shape[1]} channels, weight expects {c}")
    cols, oh, ow = im2col(x, (fy, fx), stride, padding)
    w_mat = weight.reshape(k, c * fy * fx)
    out = np.einsum("kf,bfo->bko", w_mat, cols, optimize=True)
    if bias is not None:
        out += bias[None, :, None]
    return out.reshape(x.shape[0], k, oh, ow)


def depthwise_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Depthwise convolution; ``weight`` is ``(C, 1, fy, fx)``."""
    c, one, fy, fx = weight.shape
    if one != 1:
        raise ValueError("depthwise weight must have a singleton second dim")
    if x.shape[1] != c:
        raise ValueError(f"input has {x.shape[1]} channels, weight expects {c}")
    cols, oh, ow = im2col(x, (fy, fx), stride, padding)
    b = x.shape[0]
    cols = cols.reshape(b, c, fy * fx, oh * ow)
    w_mat = weight.reshape(c, fy * fx)
    out = np.einsum("cf,bcfo->bco", w_mat, cols, optimize=True)
    if bias is not None:
        out += bias[None, :, None]
    return out.reshape(b, c, oh, ow)


def linear(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """Affine map on the trailing axis; ``weight`` is ``(out, in)``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def max_pool2d(x: np.ndarray, kernel: int, stride: int, padding: int = 0) -> np.ndarray:
    if padding:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            constant_values=-np.inf,
        )
    cols, oh, ow = im2col(x, (kernel, kernel), stride, 0)
    b, c = x.shape[0], x.shape[1]
    cols = cols.reshape(b, c, kernel * kernel, oh * ow)
    return cols.max(axis=2).reshape(b, c, oh, ow)


def avg_pool2d(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    cols, oh, ow = im2col(x, (kernel, kernel), stride, 0)
    b, c = x.shape[0], x.shape[1]
    cols = cols.reshape(b, c, kernel * kernel, oh * ow)
    return cols.mean(axis=2).reshape(b, c, oh, ow)


def global_avg_pool2d(x: np.ndarray) -> np.ndarray:
    """NCHW -> NC (mean over spatial dims)."""
    return x.mean(axis=(2, 3))


def batch_norm2d(
    x: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Inference-mode batch norm over the channel axis of NCHW."""
    scale = gamma / np.sqrt(var + eps)
    shift = beta - mean * scale
    return x * scale[None, :, None, None] + shift[None, :, None, None]


def layer_norm(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Layer norm over the trailing axis."""
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mu) / np.sqrt(var + eps) * gamma + beta


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu6(x: np.ndarray) -> np.ndarray:
    return np.clip(x, 0.0, 6.0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh approximation of GELU (the BERT variant)."""
    return 0.5 * x * (1.0 + np.tanh(
        np.sqrt(2.0 / np.pi) * (x + 0.044715 * x ** 3)))


def sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    expx = np.exp(x[~pos])
    out[~pos] = expx / (1.0 + expx)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)
