"""LSTM cell and stacked LSTM for the CNN-LSTM audio-denoising benchmark.

Gate layout follows the PyTorch convention: the ``(4H, in)`` weight
matrices stack input, forget, cell and output gates along the first
axis.  Both the input-hidden and hidden-hidden matrices are quantized
and exposed for Bit-Flip (they are "LSTM.0"/"LSTM.1" in the paper's
Fig. 6(c), carrying ~80% of the network's weights).
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.init import quantized_kaiming
from repro.nn.model import QuantizedLayer


class LSTMLayerWeights(QuantizedLayer):
    """One LSTM layer's fused weights ``[W_ih | W_hh]`` as ``(4H, in+H)``.

    Fusing the two matrices into a single quantized payload mirrors how
    the accelerator sees an LSTM step: one big matmul over the
    concatenated ``[x_t, h_{t-1}]`` vector -- and gives Bit-Flip a
    single group axis (the concatenated input dimension).
    """

    def __init__(
        self, input_size: int, hidden_size: int, seed: tuple[object, ...]
    ) -> None:
        self.input_size = input_size
        self.hidden_size = hidden_size
        shape = (4 * hidden_size, input_size + hidden_size)
        self.qweight = quantized_kaiming(shape, input_size + hidden_size, *seed)
        self.bias = np.zeros(4 * hidden_size, dtype=np.float32)
        # Forget-gate bias of 1.0: standard LSTM practice.
        self.bias[hidden_size:2 * hidden_size] = 1.0

    def packed_weights(self) -> np.ndarray:
        return self.qweight.values

    def set_packed_weights(self, packed: np.ndarray) -> None:
        values = np.asarray(packed, dtype=np.int8).reshape(self.qweight.shape)
        self.qweight = self.qweight.with_values(values)

    def step(
        self, x_t: np.ndarray, h: np.ndarray, c: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One timestep: returns ``(h_next, c_next)``."""
        fused = np.concatenate([x_t, h], axis=-1)
        gates = F.linear(fused, self.weight, self.bias)
        hs = self.hidden_size
        i = F.sigmoid(gates[..., :hs])
        f = F.sigmoid(gates[..., hs:2 * hs])
        g = F.tanh(gates[..., 2 * hs:3 * hs])
        o = F.sigmoid(gates[..., 3 * hs:])
        c_next = f * c + i * g
        h_next = o * F.tanh(c_next)
        return h_next, c_next


class LSTM:
    """Stacked unidirectional LSTM over ``(batch, time, features)``."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        seed: tuple[object, ...] = ("lstm",),
    ) -> None:
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.layers = [
            LSTMLayerWeights(
                input_size if i == 0 else hidden_size, hidden_size,
                seed + (i,))
            for i in range(num_layers)
        ]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Returns the top layer's hidden sequence ``(batch, time, H)``."""
        batch, time, _ = x.shape
        sequence = x
        for layer in self.layers:
            h = np.zeros((batch, self.hidden_size), dtype=np.float32)
            c = np.zeros((batch, self.hidden_size), dtype=np.float32)
            outputs = np.empty(
                (batch, time, self.hidden_size), dtype=np.float32)
            for t in range(time):
                h, c = layer.step(sequence[:, t, :], h, c)
                outputs[:, t, :] = h
            sequence = outputs
        return sequence
