"""``repro.arch``: one typed hardware-description API.

Both evaluation engines -- the analytical STEP1-STEP4 model and the
structural BitWave NPU simulator -- consume the same frozen
:class:`ArchSpec` (PE-array geometry, BCS group size, memory widths,
and a nested :class:`TechSpec` carrying the Table IV unit energies and
clock).  Named presets (:data:`DEFAULT_ARCH` is the paper's system
point) and the ``"bitwave-16nm@sram_pj=0.5+group=16"`` override grammar
make hardware a first-class evaluation axis: ``repro.eval`` folds the
canonical arch spelling into its cache keys and ``repro.dse`` sweeps
``--archs`` as a campaign dimension.
"""

from repro.arch.presets import (
    ARCH_PRESETS,
    DEFAULT_ARCH,
    OVERRIDE_FIELDS,
    PRESET_DESCRIPTIONS,
    arch_names,
    arch_overrides,
    canonical_arch,
    default_arch,
    parse_arch,
    register_arch,
)
from repro.arch.spec import (
    SEGMENT_BITS,
    SEGMENT_KERNELS,
    SERIAL_COLUMNS,
    ArchSpec,
    TechSpec,
)

__all__ = [
    "ARCH_PRESETS",
    "ArchSpec",
    "DEFAULT_ARCH",
    "OVERRIDE_FIELDS",
    "PRESET_DESCRIPTIONS",
    "SEGMENT_BITS",
    "SEGMENT_KERNELS",
    "SERIAL_COLUMNS",
    "TechSpec",
    "arch_names",
    "arch_overrides",
    "canonical_arch",
    "default_arch",
    "parse_arch",
    "register_arch",
]
