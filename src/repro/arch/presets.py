"""Named architecture presets and the ``@field=value`` override grammar.

A hardware design point is named the same way a workload is
parametrized (:func:`repro.workloads.nets.parse_network`): a preset
name, optionally followed by ``@`` and ``+``-joined overrides::

    bitwave-16nm
    bitwave-16nm@group=16
    bitwave-16nm@sram_pj=0.5+group=16

:func:`parse_arch` resolves a spec string to a frozen
:class:`~repro.arch.spec.ArchSpec`; :func:`canonical_arch` gives every
equivalent spelling one canonical form (overrides equal to the preset's
own value are dropped, the rest sort by name), so equivalent spellings
share one evaluation-cache key and one campaign grid point.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, NamedTuple

from repro.arch.spec import ArchSpec, TechSpec

#: The paper's system point; the default everywhere an arch is optional.
DEFAULT_ARCH = "bitwave-16nm"


class _Override(NamedTuple):
    """One grammar field: where it lands and how its value parses.

    ``parse`` turns the spelled value into the grammar's unit (what
    :func:`canonical_arch` prints back); ``scale`` converts the grammar
    unit into the spec field's unit (e.g. MHz -> Hz).
    """

    target: str  #: ``ArchSpec`` field name, or ``"tech.<field>"``
    parse: Callable[[str], "int | float | str"]
    help: str
    scale: float = 1.0

    def field_value(self, value: "int | float | str") -> "int | float | str":
        if self.scale != 1.0 and not isinstance(value, str):
            return value * self.scale
        return value


def _int(raw: str) -> int:
    return int(raw)


def _float(raw: str) -> float:
    return float(raw)


#: The override grammar: short axis name -> spec field.
OVERRIDE_FIELDS: dict[str, _Override] = {
    # PE-array geometry
    "group": _Override("group_size", _int, "BCS column group size"),
    "ku": _Override("ku", _int, "kernel unroll (multiple of 8)"),
    "oxu": _Override("oxu", _int, "output-spatial unroll"),
    "weight_bw": _Override("weight_bw_bits", _int,
                           "weight fetch bandwidth (bits/cycle)"),
    "act_bw": _Override("act_bw_bits", _int,
                        "activation fetch bandwidth (bits/cycle)"),
    # memory hierarchy
    "sram_w": _Override("sram_w_bits", _int,
                        "weight-SRAM port width (bits/cycle)"),
    "sram_a": _Override("sram_a_bits", _int,
                        "activation-SRAM port width (bits/cycle)"),
    "sram_kb": _Override("sram_kb", _int, "total SRAM capacity (KB)"),
    "n_bce": _Override("n_bce", _int, "bit-column engines in the array"),
    # precision / columns mode
    "columns": _Override("columns", str, "ZCIP column mode (sm|dense)"),
    "dense_precision": _Override("dense_precision", _int,
                                 "ZCIP dense-mode precision (bits)"),
    # technology point
    "clock_mhz": _Override("tech.clock_frequency_hz", _float,
                           "clock frequency (MHz)", scale=1e6),
    "dram_pj": _Override("tech.dram_pj_per_element", _float,
                         "DRAM energy (pJ/byte)"),
    "sram_pj": _Override("tech.sram_pj_per_element", _float,
                         "SRAM energy (pJ/byte)"),
    "reg_pj": _Override("tech.reg_pj_per_element", _float,
                        "register energy (pJ/byte)"),
    "mac_pj": _Override("tech.mac_bit_parallel_pj", _float,
                        "bit-parallel MAC energy (pJ)"),
    "serial_pj": _Override("tech.mac_bit_serial_cycle_pj", _float,
                           "bit-serial lane-cycle energy (pJ)"),
    "bce_pj": _Override("tech.bce_column_cycle_pj", _float,
                        "BCE column lane-cycle energy (pJ)"),
    "dram_bits": _Override("tech.dram_bits_per_cycle", _int,
                           "DRAM interface width (bits/cycle)"),
    "sram_bits": _Override("tech.sram_bits_per_cycle", _int,
                           "default SRAM interface width (bits/cycle)"),
}


def _table_i_point(group: int, oxu: int, weight_bw: int,
                   act_bw: int) -> ArchSpec:
    return ArchSpec(group_size=group, oxu=oxu,
                    weight_bw_bits=weight_bw, act_bw_bits=act_bw)


#: Registered presets (name -> spec); the Fig. 13 / Table III designs.
ARCH_PRESETS: dict[str, ArchSpec] = {
    # The paper's system point: Table I SU1 geometry at 16 nm / 250 MHz.
    DEFAULT_ARCH: ArchSpec(),
    # Table I alternates: SU2 / SU3 widen the column group.
    "bitwave-su2-16nm": _table_i_point(16, 8, 512, 1024),
    "bitwave-su3-16nm": _table_i_point(32, 4, 1024, 1024),
    # The Fig. 13 Dense baseline's fixed [Cu=64, Ku=64] unrolling,
    # streaming every column (ZCIP dense mode at full 8-bit precision).
    "bitwave-dense-16nm": ArchSpec(
        group_size=64, ku=64, oxu=1,
        weight_bw_bits=4096, act_bw_bits=64,
        columns="dense", dense_precision=8),
}

#: One-line description per preset (README / CLI help).
PRESET_DESCRIPTIONS: dict[str, str] = {
    DEFAULT_ARCH: "paper system point (Table I SU1, 16 nm, 250 MHz)",
    "bitwave-su2-16nm": "Table I SU2 geometry (G=16, OXu=8)",
    "bitwave-su3-16nm": "Table I SU3 geometry (G=32, OXu=4)",
    "bitwave-dense-16nm": "Fig. 13 Dense baseline ([Cu=64, Ku=64])",
}


def arch_names() -> tuple[str, ...]:
    """Registered preset names, in registration order."""
    return tuple(ARCH_PRESETS)


def register_arch(name: str, spec: ArchSpec,
                  description: str = "") -> ArchSpec:
    """Add a preset to the registry (last registration wins).

    Caching caveat: evaluation-cache keys hash the arch *spelling*
    (preset name + overrides), not the resolved field values -- the
    built-in presets are covered by the source fingerprint, but a
    runtime-registered name is not.  Re-registering an existing name
    with different field values does NOT invalidate results cached
    under the old meaning; pick a fresh name (or version the name,
    ``"custom-v2"``) when the hardware a name describes changes.
    """
    if not name or "@" in name or "+" in name or "=" in name:
        raise ValueError(
            f"preset name {name!r} must be non-empty and free of the "
            f"override grammar characters '@', '+', '='")
    ARCH_PRESETS[name] = spec
    if description:
        PRESET_DESCRIPTIONS[name] = description
    return spec


def default_arch() -> ArchSpec:
    """The :data:`DEFAULT_ARCH` preset."""
    return ARCH_PRESETS[DEFAULT_ARCH]


def _apply(spec: ArchSpec, name: str,
           value: "int | float | str") -> ArchSpec:
    """Apply one grammar-unit override onto ``spec``."""
    override = OVERRIDE_FIELDS[name]
    field_value = override.field_value(value)
    if override.target.startswith("tech."):
        return spec.with_tech(**{override.target[len("tech."):]: field_value})
    return replace(spec, **{override.target: field_value})


def arch_overrides(spec: str) -> tuple[str, dict[str, "int | float | str"]]:
    """Split an arch spec string into ``(preset name, overrides)``.

    ``"bitwave-16nm"`` -> ``("bitwave-16nm", {})``;
    ``"bitwave-16nm@sram_pj=0.5+group=16"`` ->
    ``("bitwave-16nm", {"sram_pj": 0.5, "group": 16})``.  Raises
    ``ValueError`` for unknown presets, unknown fields, malformed or
    duplicate overrides.
    """
    base, _, override_str = spec.partition("@")
    if base not in ARCH_PRESETS:
        raise ValueError(
            f"unknown arch preset {base!r}; one of {arch_names()}")
    overrides: dict[str, int | float | str] = {}
    if override_str:
        for part in override_str.split("+"):
            name, sep, raw = part.partition("=")
            if not sep or not name or not raw:
                raise ValueError(
                    f"bad arch override {part!r} in {spec!r} "
                    f"(expected field=value)")
            if name not in OVERRIDE_FIELDS:
                raise ValueError(
                    f"unknown arch field {name!r} in {spec!r}; "
                    f"one of {tuple(OVERRIDE_FIELDS)}")
            if name in overrides:
                raise ValueError(f"duplicate arch field {name!r} in {spec!r}")
            try:
                overrides[name] = OVERRIDE_FIELDS[name].parse(raw)
            except ValueError:
                kind = ("an integer"
                        if OVERRIDE_FIELDS[name].parse is _int else "a number")
                raise ValueError(
                    f"arch field {name!r} must be {kind}, got {raw!r}")
    return base, overrides


def parse_arch(spec: "str | ArchSpec") -> ArchSpec:
    """Resolve an arch spec string (or pass a spec through).

    Overrides apply in spelling order onto the named preset; the
    resulting spec re-validates, so e.g. ``@ku=12`` reports the
    segment-width constraint instead of silently mis-accounting.
    """
    if isinstance(spec, ArchSpec):
        return spec
    base, overrides = arch_overrides(spec)
    resolved = ARCH_PRESETS[base]
    for name, value in overrides.items():
        resolved = _apply(resolved, name, value)
    return resolved


def canonical_arch(spec: str) -> str:
    """One spelling per design point: no-op overrides dropped, the rest
    sorted by field name.

    ``"bitwave-16nm@group=8"`` (the preset's own value) canonicalizes
    to ``"bitwave-16nm"``, and ``"bitwave-16nm@sram_pj=0.50+group=16"``
    to ``"bitwave-16nm@group=16+sram_pj=0.5"``.
    """
    base, overrides = arch_overrides(spec)
    preset = ARCH_PRESETS[base]
    kept: dict[str, int | float | str] = {}
    for name, value in sorted(overrides.items()):
        if _apply(preset, name, value) != preset:
            kept[name] = value
    if not kept:
        return base
    return base + "@" + "+".join(f"{name}={value}"
                                 for name, value in kept.items())


#: Re-exported for the arch package root.
__all__ = [
    "ARCH_PRESETS",
    "DEFAULT_ARCH",
    "OVERRIDE_FIELDS",
    "PRESET_DESCRIPTIONS",
    "arch_names",
    "arch_overrides",
    "canonical_arch",
    "default_arch",
    "parse_arch",
    "register_arch",
]
