"""Typed hardware description: the one spelling of "what machine is this".

The paper's results hinge on a single hardware description -- the
Table IV 16 nm unit energies, the 250 MHz clock, the [Ku, Cu/OXu]
PE-array unrollings, and the group-size-8 BCS datapath.  An
:class:`ArchSpec` carries exactly that description: PE-array geometry,
precision/columns mode, BCS group size, memory interface widths and
sizes, and a nested :class:`TechSpec` with the technology point (unit
energies, clock, PE areas).  Both evaluation engines consume it -- the
analytical STEP1-STEP4 model (:mod:`repro.accelerators`) and the
structural simulator (:class:`repro.sim.npu.BitWaveNPU`) -- so a
campaign sweeping ``sram_pj`` or ``group`` moves both backends
together.

Specs are frozen and JSON-round-trippable (``to_dict`` / ``from_dict``
are exact inverses); named presets and the ``@field=value`` override
grammar live in :mod:`repro.arch.presets`.

This module deliberately imports nothing from :mod:`repro.model` or
:mod:`repro.sim` at module level (both import *us*); the conversion
into the numeric :class:`repro.model.technology.Technology` type is a
lazy import inside :meth:`TechSpec.technology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # runtime import would cycle through repro.model
    from repro.model.technology import Technology

#: Kernels sharing one 64-bit weight segment (Fig. 10: "64 same
#: significance weight bits from 8 input channels across 8 kernels").
#: Canonical home of the constant; :mod:`repro.sim.npu` re-exports it.
SEGMENT_KERNELS = 8

#: Segment granularity of the weight SRAM layout (Fig. 10).
SEGMENT_BITS = 64

#: Serial bit columns of an Int8 weight (sign + 7 magnitude planes).
SERIAL_COLUMNS = 8


@dataclass(frozen=True)
class TechSpec:
    """One technology point: unit energies, clock, and PE areas.

    Defaults are the paper's 16 nm FinFET point (Section V-A/V-B
    STEP4): Table IV per-PE powers at 250 MHz converted to per-cycle
    energies, the DRAMPower DDR3 coefficient for off-chip traffic, and
    the published PE synthesis areas.  All energies are picojoules.

    - one 8x8 bit-parallel PE: 2.13e-2 mW -> 0.0852 pJ per MAC;
    - eight 1x8 bit-serial PEs (one MAC-equivalent per cycle):
      5.71e-2 mW -> 0.2284 pJ per MAC-equivalent cycle;
    - eight 1x8 bit-column-serial PEs (one BCE): 1.71e-2 mW ->
      0.0684 pJ per column cycle.

    DDR3 streaming I/O energy ~7.5 pJ/bit (DRAMPower, activate+read
    amortized over bursts): 60 pJ per byte.  256 KB single-port SRAM in
    16 nm: ~0.125 pJ/bit -> 1.0 pJ per byte.  Pipeline/accumulator
    registers: ~0.03 pJ per byte.  DDR3-1600 on a 64-bit channel
    delivers 12.8 GB/s; against the 250 MHz accelerator clock that is
    51 bytes/cycle, modelled as 512 bits/cycle.
    """

    # --- clock --------------------------------------------------------
    clock_frequency_hz: float = 250e6
    # --- energy per 8-bit element access ------------------------------
    dram_pj_per_element: float = 60.0
    sram_pj_per_element: float = 1.00
    reg_pj_per_element: float = 0.03
    # --- energy per compute operation ---------------------------------
    mac_bit_parallel_pj: float = 0.0852
    mac_bit_serial_cycle_pj: float = 0.2284 / 8.0   # per 1x8 lane-cycle
    bce_column_cycle_pj: float = 0.0684 / 8.0       # per SMM lane-cycle
    # --- interface widths ---------------------------------------------
    dram_bits_per_cycle: int = 512
    sram_bits_per_cycle: int = 1024
    # --- Table IV PE synthesis areas (um^2 per 8x8-MAC equivalent) ----
    pe_bit_parallel_area_um2: float = 98.029
    pe_bit_serial_area_um2: float = 443.284
    pe_bit_column_area_um2: float = 123.431

    def __post_init__(self) -> None:
        for name in (
            "clock_frequency_hz", "dram_pj_per_element",
            "sram_pj_per_element", "reg_pj_per_element",
            "mac_bit_parallel_pj", "mac_bit_serial_cycle_pj",
            "bce_column_cycle_pj", "pe_bit_parallel_area_um2",
            "pe_bit_serial_area_um2", "pe_bit_column_area_um2",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"TechSpec.{name} must be positive, "
                    f"got {getattr(self, name)}")
        for name in ("dram_bits_per_cycle", "sram_bits_per_cycle"):
            value = getattr(self, name)
            if value < 8 or value % 8:
                raise ValueError(
                    f"TechSpec.{name} must be a positive multiple of 8 "
                    f"bits, got {value}")

    # ------------------------------------------------------------------
    def technology(self) -> "Technology":
        """The numeric :class:`repro.model.technology.Technology` view
        the STEP4 pricing functions consume."""
        from repro.model.technology import Technology

        return Technology(
            dram_pj_per_element=self.dram_pj_per_element,
            sram_pj_per_element=self.sram_pj_per_element,
            reg_pj_per_element=self.reg_pj_per_element,
            mac_bit_parallel_pj=self.mac_bit_parallel_pj,
            mac_bit_serial_cycle_pj=self.mac_bit_serial_cycle_pj,
            bce_column_cycle_pj=self.bce_column_cycle_pj,
            dram_bits_per_cycle=self.dram_bits_per_cycle,
            sram_bits_per_cycle=self.sram_bits_per_cycle,
        )

    def pe_type_table(self) -> dict[str, dict[str, float]]:
        """Table IV at this technology point: area and power per PE type.

        Power is the per-8x8-MAC-equivalent cycle energy times the
        clock (``pJ x GHz = mW``); at the default 250 MHz point this
        reproduces the published Table IV milliwatts exactly.
        """
        ghz = self.clock_frequency_hz / 1e9
        return {
            "bit_parallel": {
                "area_um2": self.pe_bit_parallel_area_um2,
                "power_mw": self.mac_bit_parallel_pj * ghz,
            },
            "bit_serial": {
                "area_um2": self.pe_bit_serial_area_um2,
                "power_mw": self.mac_bit_serial_cycle_pj
                * SERIAL_COLUMNS * ghz,
            },
            "bit_column_serial": {
                "area_um2": self.pe_bit_column_area_um2,
                "power_mw": self.bce_column_cycle_pj
                * SERIAL_COLUMNS * ghz,
            },
        }

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {name: getattr(self, name)
                for name in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TechSpec":
        return cls(**{name: data[name] for name in cls.__dataclass_fields__
                      if name in data})


@dataclass(frozen=True)
class ArchSpec:
    """One hardware design point of the BitWave-style NPU.

    ``group_size`` / ``ku`` / ``oxu`` are the PE-array unrolling the
    structural simulator executes (the default is Table I's SU1:
    [Cu=8, OXu=16, Ku=32] with its 256/1024-bit fetch bandwidths);
    ``sram_w_bits`` / ``sram_a_bits`` are the weight/activation SRAM
    port widths the analytical latency model serializes traffic
    through (Table I); ``columns`` selects the ZCIP column mode
    (``"sm"`` skips zero sign-magnitude columns, ``"dense"`` streams
    the ``dense_precision`` schedule locally, Section IV-A); ``n_bce``
    and ``sram_kb`` scale the Fig. 18 area/power breakdown, and
    ``sram_kb`` also sets the mapper's/epilog's fusion thresholds
    (see :meth:`weight_sram_bytes`).
    """

    # --- PE-array geometry (the simulated unrolling) ------------------
    group_size: int = 8
    ku: int = 32
    oxu: int = 16
    weight_bw_bits: int = 256
    act_bw_bits: int = 1024
    # --- memory hierarchy ---------------------------------------------
    sram_w_bits: int = 1024
    sram_a_bits: int = 1024
    # --- precision / columns mode -------------------------------------
    columns: str = "sm"
    dense_precision: int = 8
    # --- system scale (area/power model) ------------------------------
    n_bce: int = 512
    sram_kb: int = 512
    # --- technology point ---------------------------------------------
    tech: TechSpec = field(default_factory=TechSpec)

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise ValueError(
                f"group_size must be >= 1, got {self.group_size}")
        if self.ku < SEGMENT_KERNELS or self.ku % SEGMENT_KERNELS:
            # The fetcher streams Ku/8 parallel segments (Fig. 10 packs
            # 8 kernels per 64-bit weight segment); a Ku off the segment
            # grid would silently mis-account stream parallelism.
            raise ValueError(
                f"ku must be a positive multiple of the "
                f"{SEGMENT_KERNELS}-kernel weight-segment width, "
                f"got {self.ku}")
        if self.oxu < 1:
            raise ValueError(f"oxu must be >= 1, got {self.oxu}")
        if self.weight_bw_bits < SEGMENT_BITS or \
                self.weight_bw_bits % SEGMENT_BITS:
            raise ValueError(
                f"weight_bw_bits must be a positive multiple of the "
                f"{SEGMENT_BITS}-bit segment, got {self.weight_bw_bits}")
        for name in ("act_bw_bits", "sram_w_bits", "sram_a_bits"):
            value = getattr(self, name)
            if value < 8 or value % 8:
                raise ValueError(
                    f"{name} must be a positive multiple of 8 bits, "
                    f"got {value}")
        if self.columns not in ("sm", "dense"):
            raise ValueError(
                f"columns must be 'sm' or 'dense', got {self.columns!r}")
        if not 1 <= self.dense_precision <= SERIAL_COLUMNS:
            raise ValueError(
                f"dense_precision must be in [1, {SERIAL_COLUMNS}], "
                f"got {self.dense_precision}")
        for name in ("n_bce", "sram_kb"):
            if getattr(self, name) < 1:
                raise ValueError(
                    f"{name} must be >= 1, got {getattr(self, name)}")
        if not isinstance(self.tech, TechSpec):
            raise TypeError(
                f"tech must be a TechSpec, got {type(self.tech).__name__}")

    # -- derived views -------------------------------------------------
    def technology(self) -> "Technology":
        """The STEP4 :class:`Technology` of this design point."""
        return self.tech.technology()

    # The one home of the on-chip capacity split: ``sram_kb`` divides
    # evenly into weight and activation halves (the paper's 256 KB +
    # 256 KB), and the activation fusion tile is half the activation
    # SRAM -- the analytical mapper (:func:`repro.model.zigzag
    # .map_layer`) and the sim energy epilog (:mod:`repro.eval
    # .lowering`) both consume these, so the fusion/re-stream
    # thresholds cannot drift between the backends.
    def weight_sram_bytes(self) -> int:
        """Weight-SRAM capacity (bytes)."""
        return self.sram_kb * 1024 // 2

    def act_sram_bytes(self) -> int:
        """Activation-SRAM capacity (bytes)."""
        return self.sram_kb * 1024 // 2

    def act_fusion_tile_bytes(self) -> int:
        """Activation elements that fuse on chip (never visit DRAM)."""
        from repro.model.zigzag import act_fusion_tile_bytes

        return act_fusion_tile_bytes(self.act_sram_bytes())

    def pe_type_table(self) -> dict[str, dict[str, float]]:
        """Table IV (area/power per PE type) at this tech point."""
        return self.tech.pe_type_table()

    def area_breakdown(self) -> dict[str, float]:
        """Fig. 18 component areas (mm^2) at this system scale."""
        from repro.model.area import bitwave_area_breakdown

        return bitwave_area_breakdown(n_bce=self.n_bce, sram_kb=self.sram_kb)

    def power_breakdown(self) -> dict[str, float]:
        """Fig. 18 component powers (mW) at this system scale."""
        from repro.model.area import bitwave_power_breakdown

        return bitwave_power_breakdown(n_bce=self.n_bce, sram_kb=self.sram_kb)

    def with_tech(self, **overrides: Any) -> "ArchSpec":
        """A copy with :class:`TechSpec` fields replaced."""
        return replace(self, tech=replace(self.tech, **overrides))

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            name: getattr(self, name)
            for name in self.__dataclass_fields__ if name != "tech"
        }
        data["tech"] = self.tech.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArchSpec":
        kwargs: dict[str, Any] = {
            name: data[name] for name in cls.__dataclass_fields__
            if name != "tech" and name in data
        }
        if "tech" in data:
            kwargs["tech"] = TechSpec.from_dict(data["tech"])
        return cls(**kwargs)
