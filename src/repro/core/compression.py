"""BCS compression and value-sparsity baselines (paper Section III-C, Fig. 5).

BCS compression stores, per column group of ``G`` weights:

- one 8-bit *column index* whose bit ``i`` marks a non-zero column at
  plane ``i`` (MSB first; plane 0 is the sign column), and
- the non-zero columns themselves, ``G`` bits each.

Compression is lossless and -- unlike value-sparsity formats -- keeps
memory accesses regular: the stored stream is consumed directly by the
compute array without a decompression stage.

The module also implements the two value-sparsity baselines of Fig. 5:

- **ZRE** (Zero Run-Length Encoding), as used by SCNN: each non-zero
  value is stored with a fixed-width count of preceding zeros.
- **CSR** (Compressed Sparse Row): per-row non-zero values plus column
  indices and row pointers.

All compression-ratio helpers return ``original_bits / compressed_bits``
both *ideal* (payload only) and *real* (payload + index overhead), the
two bars of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bitcolumn import group_weights, ungroup_weights, zero_column_mask
from repro.core.signmag import from_sm_bitplanes, sm_bitplanes

WORD_BITS = 8


@dataclass(frozen=True)
class BCSCompressed:
    """A BCS-compressed weight tensor.

    Attributes
    ----------
    indices:
        ``(n_groups,)`` uint8; bit 7 of the byte corresponds to plane 0
        (the sign column), matching the ZCIP parser's MSB-first layout.
    columns:
        ``(total_nonzero_columns, G)`` uint8 bit matrix; the non-zero
        columns of all groups concatenated in group order, plane order
        (sign column first when present).
    group_size:
        The column group size G.
    original_shape:
        Shape of the tensor before grouping/padding.
    """

    indices: np.ndarray
    columns: np.ndarray
    group_size: int
    original_shape: tuple[int, ...]

    @property
    def n_groups(self) -> int:
        return int(self.indices.shape[0])

    @property
    def original_bits(self) -> int:
        return int(np.prod(self.original_shape)) * WORD_BITS

    @property
    def payload_bits(self) -> int:
        """Bits spent on stored (non-zero) columns."""
        return int(self.columns.shape[0]) * self.group_size

    @property
    def index_bits(self) -> int:
        """Bits spent on per-group column indices."""
        return self.n_groups * WORD_BITS

    @property
    def compressed_bits(self) -> int:
        return self.payload_bits + self.index_bits

    @property
    def compression_ratio(self) -> float:
        """Real CR including index overhead (lower bars of Fig. 5)."""
        return self.original_bits / self.compressed_bits

    @property
    def ideal_compression_ratio(self) -> float:
        """Ideal CR ignoring the index overhead (upper bars of Fig. 5)."""
        return self.original_bits / max(self.payload_bits, 1)


def bcs_compress(weights: np.ndarray, group_size: int) -> BCSCompressed:
    """Compress an Int8 weight tensor with BCS at the given group size."""
    weights = np.asarray(weights, dtype=np.int8)
    groups = group_weights(weights, group_size)
    planes = sm_bitplanes(groups, saturate=True)  # (n, G, 8)
    nz_mask = planes.any(axis=1)  # (n, 8) True where column non-zero

    # Index byte: bit position (7 - plane) so that the byte MSB flags the
    # sign column, as consumed by the ZCIP (Fig. 7).
    weights_of_planes = (1 << np.arange(7, -1, -1)).astype(np.uint16)
    indices = (nz_mask * weights_of_planes).sum(axis=1).astype(np.uint8)

    # Gather non-zero columns: planes transposed to (n, 8, G) then select.
    cols = planes.transpose(0, 2, 1)[nz_mask]  # (total_nz, G)
    return BCSCompressed(
        indices=indices,
        columns=cols.astype(np.uint8),
        group_size=group_size,
        original_shape=tuple(weights.shape),
    )


def bcs_decompress(compressed: BCSCompressed) -> np.ndarray:
    """Losslessly reconstruct the Int8 tensor from a BCS stream."""
    n, g = compressed.n_groups, compressed.group_size
    planes = np.zeros((n, 8, g), dtype=np.uint8)
    index_bits = np.unpackbits(compressed.indices[:, None], axis=1).astype(bool)
    planes[index_bits] = compressed.columns
    groups = from_sm_bitplanes(planes.transpose(0, 2, 1))
    return ungroup_weights(groups, compressed.original_shape)


def bcs_compression_ratio(
    weights: np.ndarray, group_size: int, ideal: bool = False
) -> float:
    """Convenience wrapper returning the (real or ideal) BCS CR."""
    compressed = bcs_compress(weights, group_size)
    if ideal:
        return compressed.ideal_compression_ratio
    return compressed.compression_ratio


def bcs_nonzero_column_fraction(weights: np.ndarray, group_size: int) -> float:
    """Fraction of non-zero columns; drives BitWave's compute skipping."""
    groups = group_weights(weights, group_size)
    mask = zero_column_mask(groups, fmt="sm")
    return float(1.0 - mask.mean()) if mask.size else 1.0


def zre_compression_ratio(
    weights: np.ndarray, run_bits: int = 4, ideal: bool = False
) -> float:
    """Zero Run-Length Encoding CR (SCNN's format, Fig. 5 baseline).

    Each non-zero value costs ``WORD_BITS`` payload plus ``run_bits`` of
    zero-run-length index.  A run longer than ``2**run_bits - 1`` zeros
    costs an extra zero-valued placeholder entry (standard ZRE escape).
    """
    flat = np.asarray(weights).reshape(-1)
    if flat.size == 0:
        return 1.0
    max_run = (1 << run_bits) - 1
    nonzero_positions = np.flatnonzero(flat)
    # Zero-run before each non-zero; each escape entry (a stored zero with
    # a full run field) absorbs max_run + 1 zeros of an over-long run.
    prev = np.concatenate([[-1], nonzero_positions])
    runs = np.diff(prev) - 1
    escapes = int(np.sum(runs // (max_run + 1)))
    # Trailing zeros after the final non-zero are encoded purely by escapes.
    last = int(nonzero_positions[-1]) if nonzero_positions.size else -1
    trailing = flat.size - 1 - last
    escapes += -(-trailing // (max_run + 1))  # ceil division
    entries = int(nonzero_positions.size) + escapes
    payload_bits = entries * WORD_BITS
    index_bits = entries * run_bits
    original = flat.size * WORD_BITS
    compressed = payload_bits if ideal else payload_bits + index_bits
    return original / max(compressed, 1)


def csr_compression_ratio(
    weights: np.ndarray, row_length: int = 64, ideal: bool = False
) -> float:
    """Compressed Sparse Row CR over fixed-length rows (Fig. 5 baseline).

    Rows of ``row_length`` values store their non-zeros (8b each), a
    ``ceil(log2(row_length))``-bit column index per non-zero, and one row
    pointer of ``ceil(log2(row_length + 1))`` bits.
    """
    flat = np.asarray(weights).reshape(-1)
    if flat.size == 0:
        return 1.0
    col_bits = max(int(np.ceil(np.log2(row_length))), 1)
    ptr_bits = max(int(np.ceil(np.log2(row_length + 1))), 1)
    n_rows = int(np.ceil(flat.size / row_length))
    nnz = int(np.count_nonzero(flat))
    payload_bits = nnz * WORD_BITS
    index_bits = nnz * col_bits + n_rows * ptr_bits
    original = flat.size * WORD_BITS
    compressed = payload_bits if ideal else payload_bits + index_bits
    return original / max(compressed, 1)
