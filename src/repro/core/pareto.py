"""Pareto-front extraction for compression-ratio vs. accuracy trade-offs.

Used by the network-wide Bit-Flip optimization (paper Section III-D) to
report the configurations that offer "a favorable trade-off between the
number of zero columns for each flipped layer and the accuracy"
(Fig. 6(e)-(h))."""

from __future__ import annotations

from typing import Sequence, TypeVar

T = TypeVar("T")


def pareto_front(
    points: Sequence[tuple[float, float, T]],
    maximize: tuple[bool, bool] = (True, True),
) -> list[tuple[float, float, T]]:
    """Return the non-dominated subset of ``(cr, accuracy, payload)`` points.

    By default both objectives are maximized.  A point is kept when no
    other point has a strictly better first objective *and* an
    at-least-equal second objective, or vice versa.  ``maximize``
    flips either objective to minimization (the DSE engine extracts
    cycles-vs-energy fronts with ``maximize=(False, False)``).  Output
    is sorted so the first objective goes from worst to best (for the
    default senses: ascending CR, non-increasing accuracy).
    """
    sx = 1.0 if maximize[0] else -1.0
    sy = 1.0 if maximize[1] else -1.0
    front: list[tuple[float, float, T]] = []
    ordered = sorted(points, key=lambda p: (-sx * p[0], -sy * p[1]))
    best_second = float("-inf")
    for cr, accuracy, payload in ordered:
        if sy * accuracy > best_second:
            front.append((cr, accuracy, payload))
            best_second = sy * accuracy
    front.reverse()
    return front
