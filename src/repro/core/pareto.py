"""Pareto-front extraction for compression-ratio vs. accuracy trade-offs.

Used by the network-wide Bit-Flip optimization (paper Section III-D) to
report the configurations that offer "a favorable trade-off between the
number of zero columns for each flipped layer and the accuracy"
(Fig. 6(e)-(h))."""

from __future__ import annotations

from typing import Sequence, TypeVar

T = TypeVar("T")


def pareto_front(
    points: Sequence[tuple[float, float, T]]
) -> list[tuple[float, float, T]]:
    """Return the non-dominated subset of ``(cr, accuracy, payload)`` points.

    Both objectives are maximized.  A point is kept when no other point
    has strictly higher CR *and* at-least-equal accuracy, or strictly
    higher accuracy *and* at-least-equal CR.  Output is sorted by
    ascending CR (so accuracy is non-increasing along the front).
    """
    front: list[tuple[float, float, T]] = []
    ordered = sorted(points, key=lambda p: (-p[0], -p[1]))
    best_accuracy = float("-inf")
    for cr, accuracy, payload in ordered:
        if accuracy > best_accuracy:
            front.append((cr, accuracy, payload))
            best_accuracy = accuracy
    front.reverse()
    return front
