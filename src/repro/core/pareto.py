"""Pareto-front extraction for compression-ratio vs. accuracy trade-offs.

Used by the network-wide Bit-Flip optimization (paper Section III-D) to
report the configurations that offer "a favorable trade-off between the
number of zero columns for each flipped layer and the accuracy"
(Fig. 6(e)-(h))."""

from __future__ import annotations

from typing import Sequence, TypeVar

T = TypeVar("T")


def pareto_front(
    points: Sequence[tuple[float, float, T]],
    maximize: tuple[bool, bool] = (True, True),
) -> list[tuple[float, float, T]]:
    """Return the non-dominated subset of ``(cr, accuracy, payload)`` points.

    By default both objectives are maximized.  A point is kept when no
    other point has a strictly better first objective *and* an
    at-least-equal second objective, or vice versa.  ``maximize``
    flips either objective to minimization (the DSE engine extracts
    cycles-vs-energy fronts with ``maximize=(False, False)``).  Output
    is sorted so the first objective goes from worst to best (for the
    default senses: ascending CR, non-increasing accuracy).

    Degenerate inputs have pinned behavior (the guided-search archive
    feeds this function with raw probe streams):

    - a point whose objective values include ``None`` or NaN is
      *dropped*, never ranked -- an unpriced metric must not read as
      best-possible or as a comparison poison;
    - exact ``(x, y)`` duplicates keep only the **first occurrence**
      in input order (so re-adding an archived point is a no-op and
      the surviving payload is deterministic).
    """
    sx = 1.0 if maximize[0] else -1.0
    sy = 1.0 if maximize[1] else -1.0
    cleaned: list[tuple[float, float, T]] = []
    seen: set[tuple[float, float]] = set()
    for x, y, payload in points:
        if x is None or y is None:  # unpriced metric: not rankable
            continue
        if x != x or y != y:  # NaN (the only value unequal to itself)
            continue
        if (x, y) in seen:  # duplicate coordinates: first one wins
            continue
        seen.add((x, y))
        cleaned.append((x, y, payload))
    front: list[tuple[float, float, T]] = []
    # Stable sort: ties keep input order, so the survivor of a
    # same-coordinates-after-domination tie is deterministic.
    ordered = sorted(cleaned, key=lambda p: (-sx * p[0], -sy * p[1]))
    best_second = float("-inf")
    for cr, accuracy, payload in ordered:
        if sy * accuracy > best_second:
            front.append((cr, accuracy, payload))
            best_second = sy * accuracy
    front.reverse()
    return front
