"""Sign-magnitude and two's complement bit-plane codecs for Int8 weights.

The paper's central observation (Section III-B) is that DNN weight
distributions are dominated by small-magnitude values; in two's complement
a small *negative* value has many leading ones (``-3 = 0b1111_1101``)
while in sign-magnitude it has many leading zeros
(``-3 = sign 1, magnitude 0b000_0011``).  Converting the representation
therefore multiplies the number of zero bit-columns.

Bit-plane convention (shared across the repository): plane index 0 is the
MSB.  For sign-magnitude that means plane 0 is the sign plane and planes
1..7 hold the magnitude MSB..LSB.

Sign-magnitude with a 7-bit magnitude represents [-127, 127]; the Int8
value -128 has no encoding.  The quantizer in :mod:`repro.quant` produces
symmetric weights in [-127, 127]; :func:`to_sign_magnitude` rejects -128
by default and can saturate it on request.
"""

from __future__ import annotations

import numpy as np

from repro.utils.bits import pack_bits, unpack_bits

SIGN_PLANE = 0
MAGNITUDE_PLANES = tuple(range(1, 8))
#: Bit significance (power of two) of each plane index, sign plane excluded.
PLANE_SIGNIFICANCE = {plane: 7 - plane for plane in MAGNITUDE_PLANES}


def _as_int8(weights: np.ndarray) -> np.ndarray:
    weights = np.asarray(weights)
    if weights.dtype != np.int8:
        if not np.issubdtype(weights.dtype, np.integer):
            raise TypeError(f"expected integer weights, got {weights.dtype}")
        if weights.size and (weights.min() < -128 or weights.max() > 127):
            raise ValueError("weights do not fit in int8")
        weights = weights.astype(np.int8)
    return weights


def to_sign_magnitude(
    weights: np.ndarray, saturate: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Split Int8 weights into sign and 7-bit magnitude arrays.

    Parameters
    ----------
    weights:
        Int8 array (any shape).
    saturate:
        If True, map -128 to (sign=1, magnitude=127) instead of raising.

    Returns
    -------
    (sign, magnitude):
        ``sign`` is uint8 with 1 for negative values; ``magnitude`` is
        uint8 in [0, 127].
    """
    weights = _as_int8(weights)
    if np.any(weights == -128):
        if not saturate:
            raise ValueError(
                "-128 has no sign-magnitude encoding; quantize symmetrically "
                "to [-127, 127] or pass saturate=True"
            )
        weights = np.where(weights == -128, np.int8(-127), weights)
    sign = (weights < 0).astype(np.uint8)
    magnitude = np.abs(weights.astype(np.int16)).astype(np.uint8)
    return sign, magnitude


def from_sign_magnitude(sign: np.ndarray, magnitude: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_sign_magnitude`.

    Negative zero (sign=1, magnitude=0) decodes to 0, matching the
    hardware's AND-gate multiplier for which a zero magnitude column
    contributes nothing regardless of sign.
    """
    sign = np.asarray(sign, dtype=np.uint8)
    magnitude = np.asarray(magnitude, dtype=np.uint8)
    if magnitude.size and magnitude.max() > 127:
        raise ValueError("magnitude exceeds 7 bits")
    signed = magnitude.astype(np.int16)
    return np.where(sign.astype(bool), -signed, signed).astype(np.int8)


def sm_bitplanes(weights: np.ndarray, saturate: bool = False) -> np.ndarray:
    """Sign-magnitude bit planes of Int8 weights.

    Returns an array of shape ``weights.shape + (8,)`` (uint8, MSB first):
    plane 0 is the sign bit, planes 1..7 the magnitude bits.
    """
    sign, magnitude = to_sign_magnitude(weights, saturate=saturate)
    planes = unpack_bits(magnitude)
    planes[..., 0] = sign  # magnitude < 128, so its MSB slot is free
    return planes


def from_sm_bitplanes(planes: np.ndarray) -> np.ndarray:
    """Rebuild Int8 weights from sign-magnitude bit planes."""
    planes = np.asarray(planes, dtype=np.uint8)
    sign = planes[..., SIGN_PLANE]
    mag_planes = planes.copy()
    mag_planes[..., SIGN_PLANE] = 0
    magnitude = pack_bits(mag_planes)
    return from_sign_magnitude(sign, magnitude)


def twos_complement_bitplanes(weights: np.ndarray) -> np.ndarray:
    """Two's complement bit planes (uint8, plane 0 = MSB = sign)."""
    weights = _as_int8(weights)
    return unpack_bits(weights.view(np.uint8))


def from_twos_complement_bitplanes(planes: np.ndarray) -> np.ndarray:
    """Rebuild Int8 weights from two's complement bit planes."""
    return pack_bits(np.asarray(planes, dtype=np.uint8)).view(np.int8)
