"""Bit-Column Sparsity (BCS) statistics (paper Section III-A/III-B).

A *column group* is a vector of ``G`` consecutive Int8 weights.  A *bit
column* is one bit significance across all ``G`` weights of the group.
A column is *zero* when every weight in the group has a zero bit at that
significance; zero columns can be skipped by the BitWave compute engine
and elided from storage by BCS compression.

Grouping follows the paper: weights of one kernel are grouped along
consecutive input channels (the ``C`` dimension), because the BitWave BCE
spatially unrolls ``C`` along the bit column (Section IV-B).
"""

from __future__ import annotations

import numpy as np

from repro.core.signmag import sm_bitplanes, twos_complement_bitplanes

#: Binary formats understood by the statistics functions.
FORMATS = ("sm", "2c")


def _bitplanes(weights: np.ndarray, fmt: str) -> np.ndarray:
    if fmt == "sm":
        return sm_bitplanes(weights, saturate=True)
    if fmt == "2c":
        return twos_complement_bitplanes(weights)
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")


def group_weights(weights: np.ndarray, group_size: int) -> np.ndarray:
    """Reshape a weight tensor into column groups of ``group_size``.

    The tensor is flattened in C-order and zero-padded up to a multiple of
    ``group_size`` (zero padding only ever *adds* zero bits, so statistics
    are conservative).  For convolution weights callers should pass an
    array already laid out with the input-channel dimension innermost
    (see :func:`repro.workloads.spec.group_axis_layout`).

    Returns an array of shape ``(n_groups, group_size)`` of dtype int8.
    """
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    flat = np.asarray(weights, dtype=np.int8).reshape(-1)
    pad = (-flat.size) % group_size
    if pad:
        flat = np.concatenate([flat, np.zeros(pad, dtype=np.int8)])
    return flat.reshape(-1, group_size)


def ungroup_weights(
    groups: np.ndarray, original_shape: tuple[int, ...]
) -> np.ndarray:
    """Inverse of :func:`group_weights`: drop padding and restore shape."""
    size = int(np.prod(original_shape))
    flat = np.asarray(groups, dtype=np.int8).reshape(-1)
    if flat.size < size:
        raise ValueError(
            f"groups hold {flat.size} weights, need {size} for {original_shape}"
        )
    return flat[:size].reshape(original_shape)


def zero_column_mask(groups: np.ndarray, fmt: str = "sm") -> np.ndarray:
    """Boolean mask of zero bit-columns per group.

    Parameters
    ----------
    groups:
        ``(n_groups, G)`` int8 array from :func:`group_weights`.
    fmt:
        ``"sm"`` (sign-magnitude, the BitWave format) or ``"2c"``.

    Returns
    -------
    numpy.ndarray
        Boolean array of shape ``(n_groups, 8)``; column 0 is the MSB
        (sign plane in SM).  ``True`` marks a column that is zero across
        the whole group.
    """
    groups = np.asarray(groups)
    if groups.ndim != 2:
        raise ValueError(f"expected (n_groups, G) array, got shape {groups.shape}")
    planes = _bitplanes(groups, fmt)  # (n, G, 8)
    return ~planes.any(axis=1)


def nonzero_column_counts(groups: np.ndarray, fmt: str = "sm") -> np.ndarray:
    """Number of non-zero bit columns per group (0..8).

    This is exactly the per-group cycle count of the BitWave compute
    engine (the ZCIP ``Sync.ctr`` value) when the sign column is handled
    like any other column request.
    """
    return 8 - zero_column_mask(groups, fmt).sum(axis=1)


def column_sparsity(
    weights: np.ndarray, group_size: int, fmt: str = "sm"
) -> float:
    """Fraction of zero bit-columns over all columns of a weight tensor.

    This is the quantity the paper reports for ResNet18 conv2: 17% with
    two's complement and 59% with sign-magnitude at G=4 (Fig. 4).
    """
    groups = group_weights(weights, group_size)
    if groups.size == 0:
        return 0.0
    mask = zero_column_mask(groups, fmt)
    return float(mask.mean())


def bit_sparsity(weights: np.ndarray, fmt: str = "sm") -> float:
    """Fraction of zero bits over all bits of a weight tensor (Fig. 1).

    Equivalent to :func:`column_sparsity` with ``group_size=1``.
    """
    weights = np.asarray(weights, dtype=np.int8)
    if weights.size == 0:
        return 0.0
    planes = _bitplanes(weights, fmt)
    return float(1.0 - planes.mean())


def value_sparsity(weights: np.ndarray) -> float:
    """Fraction of exactly-zero values of a tensor (Fig. 1 baseline)."""
    weights = np.asarray(weights)
    if weights.size == 0:
        return 0.0
    return float((weights == 0).mean())
