"""Greedy network-wide Bit-Flip strategy search (paper Algorithm 1).

The search owns no model semantics: it operates on a mapping
``layer name -> Int8 weight tensor`` plus an ``evaluate`` callback that
scores a candidate weight set (top-1 accuracy, F1, PESQ proxy, ...).
This keeps the algorithm reusable across the four benchmark networks and
testable with synthetic evaluators.

A *strategy* maps each layer to a per-group-size zero-column target
``{layer: {8: z8, 16: z16, 32: z32}}``, exactly the ``S[layer][gs]``
structure of the paper's pseudocode.  Applying a strategy flips every
layer at each group size with a non-zero target, in increasing group-size
order (the flips compose monotonically: each pass only adds zero
columns at its own granularity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.core.bitflip import flip_layer

GROUP_SIZES = (8, 16, 32)

Strategy = dict[str, dict[int, int]]
Weights = dict[str, np.ndarray]
Evaluator = Callable[[Weights], float]


def empty_strategy(layer_names: Mapping[str, np.ndarray] | list[str]) -> Strategy:
    """An all-zeros strategy (no flipping) over the given layers."""
    names = list(layer_names)
    return {name: {gs: 0 for gs in GROUP_SIZES} for name in names}


def apply_strategy(weights: Weights, strategy: Strategy) -> Weights:
    """Flip every layer according to the strategy; untouched layers pass through."""
    flipped: Weights = {}
    for name, tensor in weights.items():
        targets = strategy.get(name)
        if not targets or not any(targets.values()):
            flipped[name] = tensor
            continue
        current = tensor
        for gs in sorted(targets):
            z = targets[gs]
            if z > 0:
                current = flip_layer(current, z, gs).weights
        flipped[name] = current
    return flipped


@dataclass
class GreedySearchResult:
    """Output of :func:`greedy_bitflip_search`.

    ``history`` records one entry per accepted move:
    ``(layer, group_size, new_target, accuracy)``.
    """

    strategy: Strategy
    accuracy: float
    history: list[tuple[str, int, int, float]] = field(default_factory=list)

    @property
    def n_moves(self) -> int:
        return len(self.history)


def greedy_bitflip_search(
    weights: Weights,
    evaluate: Evaluator,
    min_accuracy: float,
    initial_strategy: Strategy | None = None,
    group_sizes: tuple[int, ...] = GROUP_SIZES,
    layers: list[str] | None = None,
    max_zero_columns: int = 7,
    max_moves: int | None = None,
) -> GreedySearchResult:
    """Run Algorithm 1: greedily raise per-layer zero-column targets.

    Each iteration tries, for every (layer, group size), incrementing that
    zero-column target by one, evaluates the flipped network, and commits
    the single move with the best accuracy.  The loop stops when the best
    achievable accuracy falls below ``min_accuracy`` (the move is then
    *not* committed), when every target is saturated, or after
    ``max_moves`` committed moves.

    Parameters
    ----------
    weights:
        ``layer -> int8 tensor``; never mutated.
    evaluate:
        Candidate scorer; higher is better and must be on the same scale
        as ``min_accuracy``.
    min_accuracy:
        The paper's ``macc`` stopping constraint.
    initial_strategy:
        The paper's ``S`` seed (e.g. "flip heavy layers to 4 columns").
    layers:
        Restrict the search to these layers (default: all).
    """
    searchable = layers if layers is not None else list(weights)
    unknown = [name for name in searchable if name not in weights]
    if unknown:
        raise KeyError(f"strategy layers not in weight dict: {unknown}")

    strategy = empty_strategy(weights)
    if initial_strategy:
        for name, targets in initial_strategy.items():
            strategy[name].update(targets)

    accuracy = evaluate(apply_strategy(weights, strategy))
    history: list[tuple[str, int, int, float]] = []

    while True:
        best_accuracy = float("-inf")
        next_move: tuple[str, int, int] | None = None
        for layer in searchable:
            for gs in group_sizes:
                z = strategy[layer][gs]
                if z >= max_zero_columns:
                    continue
                trial = {name: dict(t) for name, t in strategy.items()}
                trial[layer][gs] = z + 1
                trial_accuracy = evaluate(apply_strategy(weights, trial))
                if trial_accuracy > best_accuracy:
                    best_accuracy = trial_accuracy
                    next_move = (layer, gs, z + 1)
        if next_move is None or best_accuracy < min_accuracy:
            break
        layer, gs, new_z = next_move
        strategy[layer][gs] = new_z
        accuracy = best_accuracy
        history.append((layer, gs, new_z, best_accuracy))
        if max_moves is not None and len(history) >= max_moves:
            break

    return GreedySearchResult(strategy=strategy, accuracy=accuracy, history=history)
