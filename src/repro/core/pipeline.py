"""End-to-end BitWave deployment pipeline (public API facade).

``BitWavePipeline`` strings together the paper's offline flow:

1. take Int8 layer weights (optionally from :mod:`repro.quant`),
2. optionally run Bit-Flip with per-layer zero-column targets,
3. BCS-compress every layer at its (tunable) group size,
4. report compression ratios, column-sparsity statistics and the
   per-layer non-zero-column stream the accelerator consumes.

The result object feeds both the analytical accelerator model
(:mod:`repro.accelerators`) and the datapath simulator (:mod:`repro.sim`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bitcolumn import (
    column_sparsity,
    group_weights,
    nonzero_column_counts,
)
from repro.core.bitflip import flip_layer
from repro.core.compression import BCSCompressed, bcs_compress

#: Group sizes the BitWave hardware supports layer-wise (Section III-C).
SUPPORTED_GROUP_SIZES = (8, 16, 32)
DEFAULT_GROUP_SIZE = 16


@dataclass(frozen=True)
class LayerDeployment:
    """Per-layer output of the pipeline."""

    name: str
    weights: np.ndarray
    compressed: BCSCompressed
    group_size: int
    zero_columns_target: int
    distortion: float

    @property
    def compression_ratio(self) -> float:
        return self.compressed.compression_ratio

    @property
    def column_sparsity(self) -> float:
        return column_sparsity(self.weights, self.group_size, fmt="sm")

    @property
    def nonzero_column_counts(self) -> np.ndarray:
        """Per-group cycle counts consumed by the BitWave compute engine."""
        groups = group_weights(self.weights, self.group_size)
        return nonzero_column_counts(groups, fmt="sm")


@dataclass
class DeploymentReport:
    """Whole-network output of :meth:`BitWavePipeline.deploy`."""

    layers: dict[str, LayerDeployment] = field(default_factory=dict)

    @property
    def total_original_bits(self) -> int:
        return sum(d.compressed.original_bits for d in self.layers.values())

    @property
    def total_compressed_bits(self) -> int:
        return sum(d.compressed.compressed_bits for d in self.layers.values())

    @property
    def compression_ratio(self) -> float:
        """Network-level CR, weighted by layer size."""
        compressed = self.total_compressed_bits
        return self.total_original_bits / compressed if compressed else 1.0

    def flipped_weights(self) -> dict[str, np.ndarray]:
        return {name: d.weights for name, d in self.layers.items()}


class BitWavePipeline:
    """Offline compression pipeline for a network's Int8 weights.

    Parameters
    ----------
    group_size:
        Default column group size; must be one the hardware supports.
    group_sizes:
        Optional per-layer override, ``{layer: G}``.
    zero_column_targets:
        Optional per-layer Bit-Flip targets, ``{layer: z}``; layers
        absent from the mapping are compressed losslessly (SM only).

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.pipeline import BitWavePipeline
    >>> w = {"fc": np.array([[1, -2, 0, 3]] * 4, dtype=np.int8)}
    >>> report = BitWavePipeline(group_size=8).deploy(w)
    >>> report.compression_ratio > 1.0
    True
    """

    def __init__(
        self,
        group_size: int = DEFAULT_GROUP_SIZE,
        group_sizes: dict[str, int] | None = None,
        zero_column_targets: dict[str, int] | None = None,
    ) -> None:
        self._validate_group_size(group_size)
        for gs in (group_sizes or {}).values():
            self._validate_group_size(gs)
        self.group_size = group_size
        self.group_sizes = dict(group_sizes or {})
        self.zero_column_targets = dict(zero_column_targets or {})

    @staticmethod
    def _validate_group_size(group_size: int) -> None:
        if group_size not in SUPPORTED_GROUP_SIZES:
            raise ValueError(
                f"group size {group_size} unsupported by BitWave hardware; "
                f"choose one of {SUPPORTED_GROUP_SIZES}"
            )

    def layer_group_size(self, name: str) -> int:
        return self.group_sizes.get(name, self.group_size)

    def deploy(self, weights: dict[str, np.ndarray]) -> DeploymentReport:
        """Flip (where requested) and BCS-compress every layer."""
        report = DeploymentReport()
        for name, tensor in weights.items():
            gs = self.layer_group_size(name)
            target = self.zero_column_targets.get(name, 0)
            if target > 0:
                flip = flip_layer(tensor, target, gs)
                deployed, distortion = flip.weights, flip.distortion
            else:
                deployed, distortion = np.asarray(tensor, dtype=np.int8), 0.0
            report.layers[name] = LayerDeployment(
                name=name,
                weights=deployed,
                compressed=bcs_compress(deployed, gs),
                group_size=gs,
                zero_columns_target=target,
                distortion=distortion,
            )
        return report
