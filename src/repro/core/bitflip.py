"""Bit-Flip weight optimization (paper Section III-D, Fig. 4(c)).

Bit-Flip forces every column group of a layer to contain *at least* a
target number of zero bit-columns, by flipping individual magnitude bits.
Per group the optimizer is exact: it enumerates all candidate sets of
surviving magnitude columns, rounds each weight's magnitude to the
nearest value representable on the surviving columns, and keeps the set
with minimal Euclidean distortion -- precisely the paper's "closest
weight vector (measured by RMS) that satisfies a specified constraint on
the desired number of zero-bit columns".

The sign column is never flipped (a sign flip would change the weight by
twice its magnitude, which the RMS objective essentially never prefers,
and it is how the ZCIP hardware treats signs: requested only when any
group member is negative).

Implementation notes
--------------------
With 7 magnitude planes there are at most :math:`\\binom{7}{k}` candidate
subsets per target, i.e. never more than 35.  All groups of a layer are
optimized simultaneously with vectorised NumPy: for each candidate subset
we build the (at most 128-entry) table of representable magnitudes, round
all group members via ``searchsorted``, and track the per-group best.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.core.bitcolumn import group_weights, ungroup_weights, zero_column_mask
from repro.core.signmag import from_sign_magnitude, to_sign_magnitude

#: Bit weights (powers of two) of the 7 magnitude planes, MSB first.
_MAGNITUDE_WEIGHTS = 1 << np.arange(6, -1, -1)


def representable_magnitudes(planes: tuple[int, ...]) -> np.ndarray:
    """Sorted magnitudes representable using only the given planes.

    ``planes`` are magnitude-plane offsets 0..6 (0 = magnitude MSB,
    weight 64; 6 = LSB, weight 1).

    >>> representable_magnitudes((5, 6)).tolist()
    [0, 1, 2, 3]
    """
    values = np.zeros(1, dtype=np.int64)
    for plane in planes:
        weight = int(_MAGNITUDE_WEIGHTS[plane])
        values = np.concatenate([values, values + weight])
    return np.unique(values)


def _round_to_table(magnitudes: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Round each magnitude to the nearest table entry (ties toward lower)."""
    idx = np.searchsorted(table, magnitudes)
    idx = np.clip(idx, 1, len(table) - 1)
    lower = table[idx - 1]
    upper = table[idx]
    choose_upper = (magnitudes - lower) > (upper - magnitudes)
    return np.where(choose_upper, upper, lower)


@dataclass(frozen=True)
class FlipResult:
    """Outcome of flipping one tensor/layer.

    Attributes
    ----------
    weights:
        The flipped Int8 tensor (same shape as the input).
    distortion:
        Total squared error versus the original weights.
    achieved_zero_columns:
        Per-group zero-column count after flipping (``(n_groups,)``).
    """

    weights: np.ndarray
    distortion: float
    achieved_zero_columns: np.ndarray

    @property
    def rms(self) -> float:
        n = int(np.prod(self.weights.shape))
        return float(np.sqrt(self.distortion / max(n, 1)))

    @property
    def min_zero_columns(self) -> int:
        if self.achieved_zero_columns.size == 0:
            return 8
        return int(self.achieved_zero_columns.min())


def flip_groups(groups: np.ndarray, target_zero_columns: int) -> FlipResult:
    """Flip a ``(n_groups, G)`` int8 array to reach the zero-column target.

    Every group ends with at least ``target_zero_columns`` zero columns
    out of its 8 (sign column included in the count, as in the paper's
    Fig. 4(c) example where the non-zero sign column counts against the
    five-zero-column target).
    """
    if not 0 <= target_zero_columns <= 8:
        raise ValueError(
            f"target_zero_columns must be in [0, 8], got {target_zero_columns}"
        )
    groups = np.asarray(groups, dtype=np.int8)
    n, _ = groups.shape
    sign, magnitude = to_sign_magnitude(groups, saturate=True)
    magnitude = magnitude.astype(np.int64)

    zero_mask = zero_column_mask(groups, fmt="sm")
    zero_counts = zero_mask.sum(axis=1)
    needs_flip = zero_counts < target_zero_columns
    if not needs_flip.any() or target_zero_columns == 0:
        flipped = from_sign_magnitude(sign, magnitude.astype(np.uint8))
        return FlipResult(flipped, 0.0, zero_counts)

    sign_nonzero = ~zero_mask[:, 0]  # sign column occupied
    best_mag = magnitude.copy()
    # Groups with an occupied sign column get one fewer magnitude column.
    for sign_occupied in (False, True):
        sel = needs_flip & (sign_nonzero == sign_occupied)
        if not sel.any():
            continue
        keep = 8 - target_zero_columns - (1 if sign_occupied else 0)
        keep = max(keep, 0)
        sub_mag = magnitude[sel]
        sub_best = np.full(sub_mag.shape, 0, dtype=np.int64)
        sub_cost = np.full(sub_mag.shape[0], np.inf)
        for subset in combinations(range(7), keep):
            table = representable_magnitudes(subset)
            rounded = _round_to_table(sub_mag, table)
            cost = ((rounded - sub_mag) ** 2).sum(axis=1)
            better = cost < sub_cost
            sub_cost = np.where(better, cost, sub_cost)
            sub_best = np.where(better[:, None], rounded, sub_best)
        best_mag[sel] = sub_best

    final_mag = np.where(needs_flip[:, None], best_mag, magnitude)
    flipped = from_sign_magnitude(sign, final_mag.astype(np.uint8))
    achieved = zero_column_mask(flipped, fmt="sm").sum(axis=1)
    distortion = float(
        ((flipped.astype(np.int64) - groups.astype(np.int64)) ** 2).sum()
    )
    return FlipResult(flipped, distortion, achieved)


def flip_group(group: np.ndarray, target_zero_columns: int) -> FlipResult:
    """Flip a single group (1-D int8 vector) -- see :func:`flip_groups`."""
    group = np.asarray(group, dtype=np.int8).reshape(1, -1)
    result = flip_groups(group, target_zero_columns)
    return FlipResult(
        result.weights.reshape(-1),
        result.distortion,
        result.achieved_zero_columns,
    )


def flip_layer(
    weights: np.ndarray, target_zero_columns: int, group_size: int
) -> FlipResult:
    """Flip a whole weight tensor, grouped along its innermost axis.

    The caller is responsible for laying the tensor out so that the
    innermost (fastest-varying) axis walks consecutive input channels of
    one kernel, matching the BitWave group axis.
    """
    weights = np.asarray(weights, dtype=np.int8)
    groups = group_weights(weights, group_size)
    result = flip_groups(groups, target_zero_columns)
    restored = ungroup_weights(result.weights, weights.shape)
    return FlipResult(restored, result.distortion, result.achieved_zero_columns)
