"""The paper's primary contribution: BCS, SM codecs, compression, Bit-Flip."""

from repro.core.bitcolumn import (
    bit_sparsity,
    column_sparsity,
    group_weights,
    nonzero_column_counts,
    ungroup_weights,
    value_sparsity,
    zero_column_mask,
)
from repro.core.bitflip import FlipResult, flip_group, flip_layer
from repro.core.compression import (
    BCSCompressed,
    bcs_compress,
    bcs_compression_ratio,
    bcs_decompress,
    csr_compression_ratio,
    zre_compression_ratio,
)
from repro.core.pareto import pareto_front
from repro.core.pipeline import BitWavePipeline
from repro.core.search import GreedySearchResult, greedy_bitflip_search
from repro.core.signmag import (
    from_sign_magnitude,
    sm_bitplanes,
    to_sign_magnitude,
    twos_complement_bitplanes,
)

__all__ = [
    "BCSCompressed",
    "BitWavePipeline",
    "FlipResult",
    "GreedySearchResult",
    "bcs_compress",
    "bcs_compression_ratio",
    "bcs_decompress",
    "bit_sparsity",
    "column_sparsity",
    "csr_compression_ratio",
    "flip_group",
    "flip_layer",
    "from_sign_magnitude",
    "greedy_bitflip_search",
    "group_weights",
    "nonzero_column_counts",
    "pareto_front",
    "sm_bitplanes",
    "to_sign_magnitude",
    "twos_complement_bitplanes",
    "ungroup_weights",
    "value_sparsity",
    "zero_column_mask",
]
