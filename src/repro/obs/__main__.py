"""``python -m repro.obs``: aggregate and inspect trace directories.

Examples::

    # Capture a trace (the campaign CLI wires this up as --trace).
    REPRO_TRACE=/tmp/trace python -m repro.dse run --spec campaign.json

    # Where did the wall-clock go?  Per-phase count/total/mean/p50/p95
    # over every worker process's trace file, plus counters (cache
    # hits/misses, dispatches, failed points) and the slowest spans.
    python -m repro.obs report /tmp/trace
    python -m repro.obs report /tmp/trace --format json

    # Just the top-N slowest individual spans (slow-point hunting).
    python -m repro.obs slow /tmp/trace --top 20
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.obs.report import (
    iter_events,
    render_report,
    report_data,
    slowest_spans,
    slowest_table,
)


def _cmd_report(args: argparse.Namespace) -> int:
    data = report_data(args.dir, top=args.top)
    if args.format == "json":
        print(json.dumps(data, indent=2, sort_keys=True))
        return 0
    print(render_report(data))
    return 0


def _cmd_slow(args: argparse.Namespace) -> int:
    slowest = slowest_spans(iter_events(args.dir), top=args.top)
    if args.format == "json":
        print(json.dumps(slowest, indent=2, sort_keys=True))
        return 0
    print(slowest_table(slowest) if slowest else "(no spans)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="aggregate structured trace directories "
                    "(spans, counters, gauges) into phase reports",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser(
        "report", help="per-phase latency/counter tables for one trace "
                       "directory")
    p_report.add_argument("dir", help="trace directory (from REPRO_TRACE "
                                      "or `python -m repro.dse run --trace`)")
    p_report.add_argument("--top", type=int, default=10, metavar="N",
                          help="slowest spans to list (default 10)")
    p_report.add_argument("--format", choices=("table", "json"),
                          default="table",
                          help="output format (default: table)")
    p_report.set_defaults(func=_cmd_report)

    p_slow = sub.add_parser(
        "slow", help="top-N slowest individual spans with attributes")
    p_slow.add_argument("dir", help="trace directory")
    p_slow.add_argument("--top", type=int, default=10, metavar="N",
                        help="spans to list (default 10)")
    p_slow.add_argument("--format", choices=("table", "json"),
                        default="table",
                        help="output format (default: table)")
    p_slow.set_defaults(func=_cmd_slow)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
