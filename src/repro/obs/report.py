"""Aggregate a trace directory into per-phase latency/counter tables.

The tracer writes one JSONL file per process
(:mod:`repro.obs.tracer`); this module merges every ``trace-*.jsonl``
in a run's directory on read and reduces the event stream to:

- **span stats** per phase name: count, total, mean, p50, p95, max --
  the "where did the wall-clock go" table;
- **counter totals** per name, with a per-attribute breakdown (e.g.
  ``eval.cache`` split by ``result=hit/miss`` and backend);
- **gauge stats** per name: count, min, mean, max;
- the **top-N slowest spans** with their attributes -- the
  "which points were slow" view.

``python -m repro.obs report <dir>`` renders these as aligned tables
or ``--format json`` for scripting; benchmarks attach the same payload
to their ``BENCH_*.json`` ``extra_info``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.obs.tracer import TRACE_FILE_GLOB
from repro.utils.tables import format_table


def iter_events(directory: str | Path) -> Iterator[dict[str, Any]]:
    """Yield every event of every per-process trace file in ``directory``.

    Files merge in name order (deterministic); a torn trailing line
    from a crashed worker is skipped, mirroring the result store's
    loader discipline.  A missing directory yields nothing.
    """
    root = Path(directory).expanduser()
    if not root.is_dir():
        return
    for path in sorted(root.glob(TRACE_FILE_GLOB)):
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from a killed worker
                if isinstance(event, dict) and "name" in event:
                    yield event


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _attr_key(attrs: dict[str, Any]) -> str:
    return ",".join(f"{k}={attrs[k]}" for k in sorted(attrs))


def aggregate(events: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Reduce an event stream to span/counter/gauge statistics."""
    span_durs: dict[str, list[float]] = {}
    span_errors: dict[str, int] = {}
    counters: dict[str, dict[str, Any]] = {}
    gauges: dict[str, list[float]] = {}
    pids: set[int] = set()
    total = 0
    for event in events:
        total += 1
        name = event["name"]
        pid = event.get("pid")
        if pid is not None:
            pids.add(pid)
        kind = event.get("t")
        if kind == "span":
            span_durs.setdefault(name, []).append(
                float(event.get("dur_s", 0.0)))
            if not event.get("ok", True):
                span_errors[name] = span_errors.get(name, 0) + 1
        elif kind == "counter":
            entry = counters.setdefault(name, {"total": 0, "breakdown": {}})
            n = int(event.get("n", 1))
            entry["total"] += n
            attrs = event.get("attrs") or {}
            if attrs:
                key = _attr_key(attrs)
                entry["breakdown"][key] = entry["breakdown"].get(key, 0) + n
        elif kind == "gauge":
            gauges.setdefault(name, []).append(float(event.get("value", 0.0)))

    spans: dict[str, dict[str, Any]] = {}
    for name, durs in span_durs.items():
        durs.sort()
        spans[name] = {
            "count": len(durs),
            "total_s": sum(durs),
            "mean_s": sum(durs) / len(durs),
            "p50_s": percentile(durs, 0.50),
            "p95_s": percentile(durs, 0.95),
            "max_s": durs[-1],
            "errors": span_errors.get(name, 0),
        }
    gauge_stats = {
        name: {
            "count": len(values),
            "min": min(values),
            "mean": sum(values) / len(values),
            "max": max(values),
        }
        for name, values in gauges.items()
    }
    return {
        "events": total,
        "processes": len(pids),
        "spans": dict(sorted(spans.items())),
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauge_stats.items())),
    }


def slowest_spans(events: Iterable[dict[str, Any]],
                  top: int = 10) -> list[dict[str, Any]]:
    """The ``top`` longest individual spans, longest first."""
    spans = [event for event in events if event.get("t") == "span"]
    spans.sort(key=lambda event: float(event.get("dur_s", 0.0)),
               reverse=True)
    return [
        {
            "name": event["name"],
            "dur_s": float(event.get("dur_s", 0.0)),
            "pid": event.get("pid"),
            "attrs": event.get("attrs") or {},
        }
        for event in spans[:top]
    ]


def report_data(directory: str | Path, top: int = 10) -> dict[str, Any]:
    """The full machine-readable report for one trace directory."""
    events = list(iter_events(directory))
    payload = aggregate(events)
    payload["dir"] = str(directory)
    payload["slowest"] = slowest_spans(events, top=top)
    return payload


def phase_breakdown(directory: str | Path) -> dict[str, Any]:
    """Just the per-phase span stats (what benchmarks attach to
    ``extra_info``): phase name -> count/total/mean/p50/p95/max."""
    return aggregate(iter_events(directory))["spans"]


# -- rendering ------------------------------------------------------------
def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}"


def span_table(spans: dict[str, dict[str, Any]]) -> str:
    rows = [
        [name, stats["count"], f"{stats['total_s']:.3f}",
         _ms(stats["mean_s"]), _ms(stats["p50_s"]), _ms(stats["p95_s"]),
         _ms(stats["max_s"]), stats.get("errors", 0)]
        for name, stats in spans.items()
    ]
    return format_table(
        ["phase", "count", "total s", "mean ms", "p50 ms", "p95 ms",
         "max ms", "errors"],
        rows, title="Per-phase span latency")


def counter_table(counters: dict[str, dict[str, Any]]) -> str:
    rows: list[list[object]] = []
    for name, entry in counters.items():
        rows.append([name, entry["total"]])
        for key, n in sorted(entry["breakdown"].items()):
            rows.append([f"  {name}[{key}]", n])
    return format_table(["counter", "total"], rows, title="Counters")


def gauge_table(gauges: dict[str, dict[str, Any]]) -> str:
    rows = [
        [name, stats["count"], f"{stats['min']:.4g}",
         f"{stats['mean']:.4g}", f"{stats['max']:.4g}"]
        for name, stats in gauges.items()
    ]
    return format_table(["gauge", "count", "min", "mean", "max"], rows,
                        title="Gauges")


def slowest_table(slowest: list[dict[str, Any]]) -> str:
    rows = [
        [entry["name"], _ms(entry["dur_s"]), entry.get("pid", ""),
         _attr_key(entry["attrs"])]
        for entry in slowest
    ]
    return format_table(["phase", "dur ms", "pid", "attrs"], rows,
                        title="Slowest spans")


def render_report(data: dict[str, Any]) -> str:
    """The human-readable multi-table report for ``report_data``."""
    parts = [
        f"trace {data['dir']}: {data['events']} events from "
        f"{data['processes']} process(es)"
    ]
    if data["spans"]:
        parts.append(span_table(data["spans"]))
    if data["counters"]:
        parts.append(counter_table(data["counters"]))
    if data["gauges"]:
        parts.append(gauge_table(data["gauges"]))
    if data["slowest"]:
        parts.append(slowest_table(data["slowest"]))
    if len(parts) == 1:
        parts.append("(no events)")
    return "\n\n".join(parts)
