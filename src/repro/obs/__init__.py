"""``repro.obs``: structured tracing, metrics, and profiling.

A low-overhead, process-safe observability layer shared by the
evaluation API, the structural simulator, and the campaign executor:

- :func:`trace` -- a context-manager *span* timing one phase
  (``with trace("eval.lower.layer", layer=name): ...``);
- :func:`counter` -- a typed monotonic event count (cache hits/misses,
  kernel dispatches, failed points);
- :func:`gauge` -- a sampled value (queue depths, sizes);
- :func:`observe` -- a pre-measured duration reported as a span (lock
  waits and other intervals timed by the caller).

Events land as JSONL in a per-run trace directory, **one file per
process** (``trace-<pid>-<token>.jsonl``), so multiprocessing pool
workers write without coordination and the aggregator merges on read
(:mod:`repro.obs.report`, ``python -m repro.obs report <dir>``).

Tracing is **disabled by default** and strictly no-op when off: every
entry point checks one module global and returns immediately, a
property pinned by the overhead tests.  Enable it by exporting
``REPRO_TRACE=<dir>`` (inherited by worker processes) or passing
``--trace`` to ``python -m repro.dse run``.
"""

from repro.obs.tracer import (
    TRACE_ENV,
    configure,
    counter,
    enabled,
    flush,
    gauge,
    observe,
    trace,
    trace_dir,
)

__all__ = [
    "TRACE_ENV",
    "configure",
    "counter",
    "enabled",
    "flush",
    "gauge",
    "observe",
    "trace",
    "trace_dir",
]
