"""Span/counter/gauge emission into per-process JSONL trace files.

Design constraints, in priority order:

1. **Near-zero cost when disabled.**  Every public entry point reads
   one module global (``_SINK``) and bails; the disabled ``trace()``
   returns a shared singleton context manager so the hot path allocates
   nothing.  The overhead tests pin this.
2. **Process-safe without coordination.**  Each process writes its own
   ``trace-<pid>-<token>.jsonl``; a forked pool worker detects the pid
   change on its first event and starts a fresh file (dropping any
   buffer inherited from the parent, which the parent still owns).
   Flushes are single ``os.write`` appends to an ``O_APPEND``
   descriptor opened per flush, so no file handle -- and no userspace
   buffer -- ever crosses a ``fork``.
3. **Crash-tolerant.**  Events are buffered in small batches and the
   reader tolerates a torn trailing line, mirroring the result store's
   discipline; ``flush()`` is cheap and the campaign worker calls it
   after every point because ``multiprocessing.Pool`` teardown does not
   run ``atexit`` hooks in workers.

Event schema (one JSON object per line)::

    {"t": "span",    "name": ..., "pid": ..., "ts": ..., "dur_s": ...,
     "ok": true, "attrs": {...}}
    {"t": "counter", "name": ..., "pid": ..., "ts": ..., "n": ...,
     "attrs": {...}}
    {"t": "gauge",   "name": ..., "pid": ..., "ts": ..., "value": ...,
     "attrs": {...}}

``ts`` is epoch seconds at emission; ``dur_s`` is a monotonic
``perf_counter`` delta.  ``attrs`` is omitted when empty.
"""

from __future__ import annotations

import atexit
import json
import os
import time
from pathlib import Path
from types import TracebackType
from typing import Any

#: Environment variable naming the trace directory; presence enables
#: tracing (and is inherited by spawned/forked worker processes).
TRACE_ENV = "REPRO_TRACE"

#: Per-process trace file name: ``trace-<pid>-<token>.jsonl``.
TRACE_FILE_PREFIX = "trace-"
TRACE_FILE_GLOB = "trace-*.jsonl"

#: Events buffered between writes; small enough that a crashed worker
#: loses at most a moment of history.
FLUSH_EVERY = 64


class _Sink:
    """Buffered JSONL writer bound to one process and one directory."""

    def __init__(self, directory: Path) -> None:
        self.directory = directory
        self._pid = os.getpid()
        self._buffer: list[str] = []
        self._path = self._fresh_path()

    def _fresh_path(self) -> Path:
        token = os.urandom(3).hex()  # pid reuse across runs stays unique
        return self.directory / f"{TRACE_FILE_PREFIX}{self._pid}-{token}.jsonl"

    @property
    def path(self) -> Path:
        return self._path

    def emit(self, event: dict[str, Any]) -> None:
        pid = os.getpid()
        if pid != self._pid:
            # Forked child: the inherited buffer belongs to the parent
            # (which still holds it); start a fresh file and buffer.
            self._pid = pid
            self._buffer = []
            self._path = self._fresh_path()
        event["pid"] = pid
        self._buffer.append(json.dumps(event, sort_keys=True))
        if len(self._buffer) >= FLUSH_EVERY:
            self.flush()

    def flush(self) -> None:
        if not self._buffer:
            return
        data = ("\n".join(self._buffer) + "\n").encode("utf-8")
        self._buffer = []
        self.directory.mkdir(parents=True, exist_ok=True)
        # One O_APPEND write per flush: atomic enough that concurrent
        # processes (which anyway write distinct files) and crashed
        # workers leave at worst one torn trailing line.
        fd = os.open(self._path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)


#: The process-wide sink; ``None`` means tracing is disabled and every
#: entry point returns immediately.
_SINK: _Sink | None = None


class _NullSpan:
    """Shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self,
                 exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live timing span; emits one ``span`` event on exit."""

    __slots__ = ("_sink", "_name", "_attrs", "_start")

    def __init__(self, sink: _Sink, name: str,
                 attrs: dict[str, Any]) -> None:
        self._sink = sink
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self,
                 exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> bool:
        dur = time.perf_counter() - self._start
        event: dict[str, Any] = {
            "t": "span", "name": self._name, "ts": time.time(),
            "dur_s": dur, "ok": exc_type is None,
        }
        if self._attrs:
            event["attrs"] = self._attrs
        self._sink.emit(event)
        return False


def trace(name: str, **attrs: Any) -> "_Span | _NullSpan":
    """Context manager timing one phase: ``with trace("sim.decode"):``.

    When tracing is disabled this returns a shared no-op object --
    callers pay one global read and two trivial method calls.
    """
    sink = _SINK
    if sink is None:
        return _NULL_SPAN
    return _Span(sink, name, attrs)


def counter(name: str, n: int = 1, **attrs: Any) -> None:
    """Record a monotonic event count (``n`` occurrences of ``name``)."""
    sink = _SINK
    if sink is None:
        return
    event: dict[str, Any] = {"t": "counter", "name": name,
                             "ts": time.time(), "n": n}
    if attrs:
        event["attrs"] = attrs
    sink.emit(event)


def gauge(name: str, value: float, **attrs: Any) -> None:
    """Record a sampled value (queue depth, bytes, ...)."""
    sink = _SINK
    if sink is None:
        return
    event: dict[str, Any] = {"t": "gauge", "name": name,
                             "ts": time.time(), "value": value}
    if attrs:
        event["attrs"] = attrs
    sink.emit(event)


def observe(name: str, seconds: float, **attrs: Any) -> None:
    """Record a duration the caller measured itself, as a span event.

    For intervals that cannot wrap a ``with`` block -- e.g. the time a
    blocking ``flock`` call spent waiting -- so they still land in the
    per-phase latency tables next to ordinary spans.
    """
    sink = _SINK
    if sink is None:
        return
    event: dict[str, Any] = {"t": "span", "name": name, "ts": time.time(),
                             "dur_s": seconds, "ok": True}
    if attrs:
        event["attrs"] = attrs
    sink.emit(event)


def enabled() -> bool:
    """Whether tracing is currently active in this process."""
    return _SINK is not None


def trace_dir() -> Path | None:
    """The active trace directory, or ``None`` when disabled."""
    return _SINK.directory if _SINK is not None else None


def flush() -> None:
    """Write any buffered events now (no-op when disabled)."""
    if _SINK is not None:
        _SINK.flush()


def configure(directory: str | Path | None) -> Path | None:
    """Enable tracing into ``directory`` (``None`` disables).

    Also sets/clears :data:`TRACE_ENV` so worker processes -- forked or
    spawned -- inherit the same destination.  Returns the resolved
    directory (or ``None``).  Idempotent: reconfiguring to the same
    directory keeps emitting there (in a fresh per-process file).
    """
    global _SINK
    flush()
    if directory is None:
        _SINK = None
        os.environ.pop(TRACE_ENV, None)
        return None
    resolved = Path(directory).expanduser()
    resolved.mkdir(parents=True, exist_ok=True)
    os.environ[TRACE_ENV] = str(resolved)
    _SINK = _Sink(resolved)
    return resolved


def _init_from_env() -> None:
    """Pick up ``$REPRO_TRACE`` at import (covers spawned workers)."""
    global _SINK
    directory = os.environ.get(TRACE_ENV)
    if directory:
        path = Path(directory).expanduser()
        try:
            path.mkdir(parents=True, exist_ok=True)
        except OSError:
            return  # unusable destination: stay disabled
        _SINK = _Sink(path)


_init_from_env()
atexit.register(flush)
