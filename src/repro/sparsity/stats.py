"""Per-tensor sparsity statistics consumed by the accelerator models.

Everything the performance model (Section V-B STEP2) needs from a weight
tensor is collected once into a :class:`LayerWeightStats`:

- value sparsity ``Sw`` and bit sparsities ``Sw,b`` (2C and SM) --
  the quantities of Fig. 1;
- the *essential-bit* histogram (non-zero 2C bits per weight), which
  drives Pragmatic's cycle model;
- per-significance occupancy (fraction of ones at each bit position),
  which drives Bitlet's interleaving model;
- per-group non-zero-column histograms for each supported group size,
  which drive BitWave's cycle model and BCS compression ratios.

Histograms rather than raw arrays keep network-level profiles small;
order statistics over accelerator sync domains are computed from the
histograms with the i.i.d. max formula
``E[max of m] = sum_v v * (F(v)^m - F(v-1)^m)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bitcolumn import group_weights, nonzero_column_counts
from repro.core.compression import bcs_compress
from repro.core.signmag import sm_bitplanes, twos_complement_bitplanes
from repro.utils.bits import popcount8

# Hardware-supported column sizes (Section III-C) plus 64 for the
# depthwise SU7 dataflow's wider sync group.
GROUP_SIZES = (8, 16, 32, 64)


def expected_max_of_sample(histogram: np.ndarray, m: int) -> float:
    """E[max of ``m`` i.i.d. draws] from a value histogram over 0..len-1."""
    if m < 1:
        raise ValueError(f"sample size must be >= 1, got {m}")
    total = histogram.sum()
    if total == 0:
        return 0.0
    cdf = np.cumsum(histogram) / total
    cdf_prev = np.concatenate([[0.0], cdf[:-1]])
    values = np.arange(len(histogram))
    return float((values * (cdf ** m - cdf_prev ** m)).sum())


@dataclass(frozen=True)
class LayerWeightStats:
    """Sparsity profile of one layer's Int8 weights."""

    weight_count: int
    value_sparsity: float
    bit_sparsity_2c: float
    bit_sparsity_sm: float
    #: Histogram (length 9) of non-zero 2C bits per weight.
    essential_bits_hist: np.ndarray
    #: Fraction of ones at each bit position (2C, MSB first; length 8).
    significance_occupancy: np.ndarray
    #: ``G -> histogram (length 9) of non-zero columns per group``.
    nz_column_hists: dict[int, np.ndarray]
    #: ``G -> real BCS compression ratio`` (with index overhead).
    bcs_cr: dict[int, float]
    #: ``G -> ideal BCS compression ratio`` (payload only).
    bcs_cr_ideal: dict[int, float]

    @property
    def essential_bits_mean(self) -> float:
        hist = self.essential_bits_hist
        total = hist.sum()
        if total == 0:
            return 0.0
        return float((np.arange(9) * hist).sum() / total)

    def mean_nz_columns(self, group_size: int) -> float:
        hist = self.nz_column_hists[group_size]
        total = hist.sum()
        if total == 0:
            return 0.0
        return float((np.arange(9) * hist).sum() / total)

    def expected_max_nz_columns(self, group_size: int, domain: int) -> float:
        """E[max non-zero columns] over a sync domain of ``domain`` groups."""
        return expected_max_of_sample(self.nz_column_hists[group_size], domain)

    def expected_max_essential_bits(self, domain: int) -> float:
        """E[max essential bits] over ``domain`` lock-stepped weights."""
        return expected_max_of_sample(self.essential_bits_hist, domain)

    def with_bitflip(self, target_zero_columns: int) -> "LayerWeightStats":
        """Stats after Bit-Flip at the given per-group target.

        Bit-Flip guarantees every group ends with at least
        ``target_zero_columns`` zero columns, i.e. at most
        ``8 - target`` non-zero columns; groups already satisfying the
        target keep their counts.  The transformed histogram is exact
        (see :func:`repro.core.bitflip.flip_groups`), so network-scale
        performance modeling never needs to materialize flipped weights.
        """
        cap = 8 - target_zero_columns
        hists = {}
        crs = {}
        crs_ideal = {}
        for g, hist in self.nz_column_hists.items():
            capped = hist.copy().astype(np.int64)
            overflow = capped[cap + 1:].sum()
            capped[cap + 1:] = 0
            capped[cap] += overflow
            hists[g] = capped
            n_groups = int(capped.sum())
            payload_bits = float((np.arange(9) * capped).sum()) * g
            index_bits = n_groups * 8.0
            original_bits = self.weight_count * 8.0
            crs[g] = original_bits / max(payload_bits + index_bits, 1.0)
            crs_ideal[g] = original_bits / max(payload_bits, 1.0)
        return LayerWeightStats(
            weight_count=self.weight_count,
            value_sparsity=self.value_sparsity,
            bit_sparsity_2c=self.bit_sparsity_2c,
            bit_sparsity_sm=self.bit_sparsity_sm,
            essential_bits_hist=self.essential_bits_hist,
            significance_occupancy=self.significance_occupancy,
            nz_column_hists=hists,
            bcs_cr=crs,
            bcs_cr_ideal=crs_ideal,
        )


def compute_layer_stats(
    weights: np.ndarray,
    group_sizes: tuple[int, ...] = GROUP_SIZES,
) -> LayerWeightStats:
    """Collect the full sparsity profile of an Int8 weight tensor."""
    flat = np.asarray(weights, dtype=np.int8).reshape(-1)
    n = flat.size
    if n == 0:
        raise ValueError("cannot profile an empty tensor")

    tc_planes = twos_complement_bitplanes(flat)
    sm_planes = sm_bitplanes(flat, saturate=True)
    essential = popcount8(flat.view(np.uint8))
    essential_hist = np.bincount(essential, minlength=9).astype(np.int64)

    nz_hists: dict[int, np.ndarray] = {}
    crs: dict[int, float] = {}
    crs_ideal: dict[int, float] = {}
    for g in group_sizes:
        groups = group_weights(weights, g)
        counts = nonzero_column_counts(groups, fmt="sm")
        nz_hists[g] = np.bincount(counts, minlength=9).astype(np.int64)
        compressed = bcs_compress(weights, g)
        crs[g] = compressed.compression_ratio
        crs_ideal[g] = compressed.ideal_compression_ratio

    return LayerWeightStats(
        weight_count=n,
        value_sparsity=float((flat == 0).mean()),
        bit_sparsity_2c=float(1.0 - tc_planes.mean()),
        bit_sparsity_sm=float(1.0 - sm_planes.mean()),
        essential_bits_hist=essential_hist,
        significance_occupancy=tc_planes.mean(axis=0),
        nz_column_hists=nz_hists,
        bcs_cr=crs,
        bcs_cr_ideal=crs_ideal,
    )
