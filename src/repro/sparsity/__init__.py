"""Sparsity statistics: per-tensor and per-network profiles (Fig. 1)."""

from repro.sparsity.stats import (
    LayerWeightStats,
    compute_layer_stats,
    expected_max_of_sample,
)
from repro.sparsity.profiles import network_weight_stats, sparsity_summary

__all__ = [
    "LayerWeightStats",
    "compute_layer_stats",
    "expected_max_of_sample",
    "network_weight_stats",
    "sparsity_summary",
]
