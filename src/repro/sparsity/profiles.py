"""Network-level sparsity profiles (cached).

``network_weight_stats`` profiles every layer of a benchmark network's
synthetic weights once and caches the result; the accelerator models and
the Fig. 1 sparsity study both consume these profiles.
"""

from __future__ import annotations

from functools import lru_cache

from repro.sparsity.stats import LayerWeightStats, compute_layer_stats
from repro.workloads.nets import network_layers
from repro.workloads.synthetic import synthetic_weights


@lru_cache(maxsize=None)
def network_weight_stats(network: str) -> dict[str, LayerWeightStats]:
    """``layer name -> LayerWeightStats`` for a benchmark network."""
    stats: dict[str, LayerWeightStats] = {}
    for spec in network_layers(network):
        stats[spec.name] = compute_layer_stats(synthetic_weights(spec))
    return stats


def sparsity_summary(network: str) -> dict[str, float]:
    """Weight-count-weighted network sparsity numbers (one Fig. 1 group).

    Returns value sparsity, 2C and SM bit sparsity, plus the paper's
    ``SR`` ratios (bit sparsity / value sparsity) for both formats.
    """
    stats = network_weight_stats(network)
    total = sum(s.weight_count for s in stats.values())
    value = sum(s.value_sparsity * s.weight_count for s in stats.values()) / total
    bit_2c = sum(
        s.bit_sparsity_2c * s.weight_count for s in stats.values()) / total
    bit_sm = sum(
        s.bit_sparsity_sm * s.weight_count for s in stats.values()) / total
    return {
        "value_sparsity": value,
        "bit_sparsity_2c": bit_2c,
        "bit_sparsity_sm": bit_sm,
        "sr_2c": bit_2c / value if value else float("inf"),
        "sr_sm": bit_sm / value if value else float("inf"),
    }
