"""``repro.faults``: deterministic fault injection for chaos testing.

A seeded, fully deterministic fault-injection framework the campaign
layer uses to exercise its own failure handling in CI: every decision
is a pure function of ``(seed, kind, site, key, attempt, call)``, so a
plan like ``"seed=7,crash:0.2:attempt<1,hang:key=3fa"`` injects the
*same* faults on every run and tests can assert the exact retry and
timeout counters it must produce.

Fault kinds: ``crash`` (raise), ``hang`` (stall past any deadline,
heartbeat-silent), ``slow_io`` (stall one operation), ``torn_write``
(tear a store append mid-line), ``die`` (kill the worker process,
OOM-style).  Sites: ``eval`` (the worker evaluation entry), ``gemm``
(inside the simulator's per-plane GEMM loop), ``store`` (the
:class:`~repro.dse.store.ResultStore` append boundary), and ``serve``
(the evaluation service's request path: ``slow_io`` stalls its store
reads, the process-breaking kinds fire inside its worker pool).

Enable with ``--inject SPEC`` on ``python -m repro.dse run|sim`` or by
exporting ``REPRO_FAULTS=SPEC`` (inherited by pool workers).  Disabled
-- the default -- every hook is a single global read.
"""

from repro.faults.hooks import (
    DIE_EXIT_CODE,
    FAULTS_ENV,
    InjectedFault,
    active_plan,
    clear_point_context,
    configure,
    enabled,
    fire,
    hang_active,
    serve_read_fault,
    set_point_context,
    store_write_fault,
)
from repro.faults.plan import (
    DEFAULT_SITES,
    FAULT_KINDS,
    FAULT_SITES,
    FaultClause,
    FaultPlan,
)

__all__ = [
    "DEFAULT_SITES",
    "DIE_EXIT_CODE",
    "FAULTS_ENV",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultClause",
    "FaultPlan",
    "InjectedFault",
    "active_plan",
    "clear_point_context",
    "configure",
    "enabled",
    "fire",
    "hang_active",
    "serve_read_fault",
    "set_point_context",
    "store_write_fault",
]
