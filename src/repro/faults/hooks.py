"""Runtime fault injection: plan activation and in-process hooks.

Mirrors :mod:`repro.obs.tracer`'s activation discipline: a single
module global holds the active :class:`~repro.faults.plan.FaultPlan`
(``None`` = disabled, and every hook bails after one global read), the
plan is exported through ``$REPRO_FAULTS`` so forked/spawned pool
workers inherit it, and hooks live at three sites:

- ``eval`` -- :func:`fire` at the top of each worker evaluation
  attempt (crash / hang / die / slow_io);
- ``gemm`` -- :func:`fire` inside the simulator's per-plane GEMM loop,
  using the point context set by the worker (stalls *mid*-evaluation);
- ``store`` -- :func:`store_write_fault` at the
  :class:`~repro.dse.store.ResultStore` append boundary (slow or torn
  writes).

``hang`` faults also silence the worker's heartbeat
(:func:`hang_active`), so a hung worker looks exactly like a
hard-frozen process to the parent-side watchdog -- which is the point.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time

from repro.faults.plan import FaultClause, FaultPlan
from repro.obs import counter, flush

#: Environment variable carrying the active plan's canonical spec;
#: presence enables injection (inherited by worker processes).
FAULTS_ENV = "REPRO_FAULTS"

#: Exit status a ``die`` fault kills the worker with (mimics the
#: kernel OOM killer's SIGKILL disposition).
DIE_EXIT_CODE = 137


class InjectedFault(RuntimeError):
    """Raised by a ``crash`` fault (classified retryable, like the
    transient infrastructure errors it stands in for)."""


#: The process-wide plan; ``None`` means injection is disabled and
#: every hook returns immediately.
_PLAN: FaultPlan | None = None

#: ``(key, attempt)`` of the point this process is evaluating, set by
#: the campaign worker so deep sites (the GEMM loop) can key decisions.
_CONTEXT: tuple[str, int] | None = None

#: Per-site call ordinals within the current point context, so each
#: visit to a repeated site gets its own deterministic draw.
_SITE_CALLS: dict[str, int] = {}

#: Per-key store-write ordinals (process lifetime): the Nth write of a
#: key is its own decision, so a retried point's re-append re-rolls.
_WRITE_CALLS: dict[str, int] = {}

#: Per-key serve-side store-read ordinals (process lifetime): like
#: store writes, the Nth read of a key is its own decision, so
#: ``slow_io:attempt<1:site=serve`` stalls only a key's first lookup.
_READ_CALLS: dict[str, int] = {}

#: Set while a ``hang`` fault is stalling this process; the worker
#: heartbeat thread goes silent while it is set.
_HANGING = threading.Event()


def configure(plan: FaultPlan | str | None) -> FaultPlan | None:
    """Activate a fault plan (``None`` disables).

    Accepts a parsed plan or a spec string.  Exports the canonical spec
    through :data:`FAULTS_ENV` so worker processes -- forked or spawned
    -- inject from the identical plan.
    """
    global _PLAN
    _WRITE_CALLS.clear()  # a fresh plan starts with fresh ordinals
    _READ_CALLS.clear()
    if plan is None:
        _PLAN = None
        os.environ.pop(FAULTS_ENV, None)
        return None
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _PLAN = plan
    os.environ[FAULTS_ENV] = plan.spec()
    return plan


def active_plan() -> FaultPlan | None:
    """The currently active plan, or ``None`` when disabled."""
    return _PLAN


def enabled() -> bool:
    """Whether fault injection is active in this process."""
    return _PLAN is not None


def hang_active() -> bool:
    """Whether a ``hang`` fault is currently stalling this process."""
    return _HANGING.is_set()


def set_point_context(key: str, attempt: int) -> None:
    """Bind deep injection sites to the point being evaluated."""
    global _CONTEXT
    if _PLAN is None:
        return
    _CONTEXT = (key, attempt)
    _SITE_CALLS.clear()


def clear_point_context() -> None:
    """Unbind the point context (end of one evaluation attempt)."""
    global _CONTEXT
    _CONTEXT = None
    _SITE_CALLS.clear()


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


def _execute(clause: FaultClause, site: str, plan: FaultPlan) -> None:
    counter("faults.injected", kind=clause.kind, site=site)
    # Flush *before* breaking anything: a hang ends in SIGKILL and a
    # die never returns, so a buffered event would vanish with the
    # worker and the trace report could not be checked against the
    # plan's injection count.
    flush()
    if clause.kind == "crash":
        raise InjectedFault(f"injected crash at {site}")
    if clause.kind == "slow_io":
        time.sleep(plan.slow_s)
        return
    if clause.kind == "die":
        if not _in_worker():
            # Killing the main process would take the campaign (and
            # the test runner) with it; inline execution degrades the
            # fault to a crash, which the retry path still exercises.
            raise InjectedFault(
                f"injected die at {site} (inline: converted to crash)")
        os._exit(DIE_EXIT_CODE)
    if clause.kind == "hang":
        if not _in_worker():
            # No parent-side watchdog is watching the main process; a
            # real hang would stall the campaign forever.
            raise InjectedFault(
                f"injected hang at {site} (inline: converted to crash)")
        _HANGING.set()  # heartbeats go silent: a convincing freeze
        time.sleep(plan.hang_s)
        _HANGING.clear()


def fire(site: str, key: str | None = None,
         attempt: int | None = None,
         kinds: tuple[str, ...] | None = None) -> None:
    """Inject whatever the plan schedules at this execution point.

    ``key``/``attempt`` default to the bound point context; with no
    plan, or no context at a deep site, this is a no-op costing one
    global read.  ``kinds`` restricts which fault kinds this hook will
    execute (sites with several physical hooks split the kinds between
    them).  May raise :class:`InjectedFault`, sleep, or kill the
    process -- exactly what real infrastructure does.
    """
    plan = _PLAN
    if plan is None:
        return
    if key is None or attempt is None:
        if _CONTEXT is None:
            return
        key, attempt = _CONTEXT
    call = _SITE_CALLS.get(site, 0)
    _SITE_CALLS[site] = call + 1
    clause = plan.decide(site, key, attempt, call, kinds=kinds)
    if clause is not None:
        _execute(clause, site, plan)


def store_write_fault(key: str) -> str | None:
    """The store-site decision for one record append.

    Applies a ``slow_io`` stall inline and returns ``"torn_write"``
    when the append should be torn mid-line (the caller owns the
    actual tearing -- it knows the bytes).  At this site the per-key
    write ordinal stands in for the attempt, so ``attempt<1`` tears
    only a key's *first* append -- the re-append after a resume
    re-evaluation lands intact, which is how a chaos test proves the
    store heals.
    """
    plan = _PLAN
    if plan is None:
        return None
    call = _WRITE_CALLS.get(key, 0)
    _WRITE_CALLS[key] = call + 1
    clause = plan.decide("store", key, call, call)
    if clause is None:
        return None
    if clause.kind == "slow_io":
        counter("faults.injected", kind="slow_io", site="store")
        time.sleep(plan.slow_s)
        return None
    if clause.kind == "torn_write":
        counter("faults.injected", kind="torn_write", site="store")
        return "torn_write"
    _execute(clause, "store", plan)
    return None


def serve_read_fault(key: str) -> str | None:
    """The ``serve``-site decision for one service store read.

    Only ``slow_io`` clauses apply here (a flaky disk under the result
    store); the process-breaking kinds at ``site=serve`` belong to the
    worker-pool hook (:func:`fire` inside the service worker), so a
    ``crash:site=serve`` plan breaks evaluations -- which the service
    retries -- rather than the read path of every request.  As at the
    store-write site, the per-key read ordinal stands in for the
    attempt.  Returns the fired kind (so the service can surface the
    stall in its own ``/metrics`` counters), or ``None``.
    """
    plan = _PLAN
    if plan is None:
        return None
    call = _READ_CALLS.get(key, 0)
    _READ_CALLS[key] = call + 1
    clause = plan.decide("serve", key, call, call, kinds=("slow_io",))
    if clause is None:
        return None
    _execute(clause, "serve", plan)
    return clause.kind


def _init_from_env() -> None:
    """Pick up ``$REPRO_FAULTS`` at import (covers spawned workers)."""
    global _PLAN
    spec = os.environ.get(FAULTS_ENV)
    if spec:
        try:
            _PLAN = FaultPlan.parse(spec)
        except ValueError:
            _PLAN = None  # unusable spec: stay disabled


_init_from_env()
