"""Deterministic fault plans: what to break, where, and when.

A :class:`FaultPlan` is a parsed ``--inject`` / ``$REPRO_FAULTS`` spec:
an ordered list of :class:`FaultClause` entries plus a few global
knobs.  Every injection decision is a pure function of
``(seed, kind, site, key, attempt, call)`` -- no process state, no
wall clock -- so the same plan against the same campaign injects the
same faults on every run, on every host, and CI can assert the exact
retry/timeout counters an injected plan must produce.

Spec grammar (clauses separated by commas)::

    spec    := clause ("," clause)*
    clause  := "seed=" INT | "hang_s=" FLOAT | "slow_s=" FLOAT
             | kind [":" field]*
    kind    := "crash" | "hang" | "slow_io" | "torn_write" | "die"
    field   := FLOAT               (probability; default 1.0)
             | "attempt<" INT      (fire only on attempts below N)
             | "key=" PREFIX       (fire only on matching config-hash keys)
             | "site=" SITE        (override the kind's default site)
    SITE    := "eval" | "gemm" | "store" | "serve" | "opt"

Examples::

    crash:0.2:attempt<1          # 20% of points crash on their first try
    hang:key=3fa:attempt<1       # one targeted point hangs once
    slow_io:0.5,torn_write:0.3   # flaky disk: slow appends, torn lines
    seed=7,crash:1:attempt<1     # every point crashes exactly once

Clauses are evaluated in order; the first one that fires wins, so a
targeted clause listed first takes precedence over a broad one.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, replace
from typing import Iterator

#: Everything the framework knows how to break.
FAULT_KINDS = ("crash", "hang", "slow_io", "torn_write", "die")

#: Injection sites instrumented across the stack.  ``serve`` is the
#: evaluation service's request path (:mod:`repro.serve`): ``slow_io``
#: clauses stall its store reads, process-breaking kinds fire inside
#: its worker pool.  ``opt`` is the guided optimizer's probe path
#: (:mod:`repro.opt`): faults fire inside the objective callback,
#: exercising its retry loop.
FAULT_SITES = ("eval", "gemm", "store", "serve", "opt")

#: Where each kind fires unless the clause names a site explicitly.
DEFAULT_SITES = {
    "crash": "eval",
    "hang": "eval",
    "die": "eval",
    "slow_io": "store",
    "torn_write": "store",
}

#: Sites a kind is allowed at (``torn_write`` only makes sense where
#: bytes hit disk).
ALLOWED_SITES = {
    "crash": ("eval", "gemm", "serve", "opt"),
    "hang": ("eval", "gemm", "serve", "opt"),
    "die": ("eval", "gemm", "serve", "opt"),
    "slow_io": ("eval", "gemm", "store", "serve", "opt"),
    "torn_write": ("store",),
}

_ATTEMPT_RE = re.compile(r"^attempt<(\d+)$")
_KEY_RE = re.compile(r"^key=([A-Za-z0-9_-]+)$")
_SITE_RE = re.compile(r"^site=([a-z_]+)$")
_GLOBAL_RE = re.compile(r"^(seed|hang_s|slow_s)=(.+)$")
_PROB_RE = re.compile(r"^\d+(\.\d+)?$|^\.\d+$")


@dataclass(frozen=True)
class FaultClause:
    """One kind of injected fault, gated by site/key/attempt."""

    kind: str
    probability: float = 1.0
    #: Fire only while ``attempt < max_attempt`` (``None`` = always).
    #: ``attempt<1`` makes a fault strictly transient: the retry is
    #: guaranteed clean, which is what bit-identical chaos tests want.
    max_attempt: int | None = None
    #: Fire only on config-hash keys starting with this prefix.
    key_prefix: str | None = None
    site: str = ""  # resolved to the kind's default by __post_init__

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"fault probability must be in [0, 1], got "
                f"{self.probability}")
        if not self.site:
            object.__setattr__(self, "site", DEFAULT_SITES[self.kind])
        if self.site not in ALLOWED_SITES[self.kind]:
            raise ValueError(
                f"fault {self.kind!r} cannot fire at site {self.site!r}; "
                f"one of {ALLOWED_SITES[self.kind]}")

    def matches(self, site: str, key: str, attempt: int) -> bool:
        """Whether the gates (not the dice) allow firing here."""
        if site != self.site:
            return False
        if self.max_attempt is not None and attempt >= self.max_attempt:
            return False
        if self.key_prefix is not None and not key.startswith(self.key_prefix):
            return False
        return True

    def spec(self) -> str:
        """Canonical spelling of this clause."""
        parts = [self.kind, f"{self.probability:g}"]
        if self.max_attempt is not None:
            parts.append(f"attempt<{self.max_attempt}")
        if self.key_prefix is not None:
            parts.append(f"key={self.key_prefix}")
        if self.site != DEFAULT_SITES[self.kind]:
            parts.append(f"site={self.site}")
        return ":".join(parts)


def _parse_clause(text: str) -> FaultClause:
    fields = text.split(":")
    clause = FaultClause(kind=fields[0])
    for field in fields[1:]:
        if _PROB_RE.match(field):
            clause = replace(clause, probability=float(field))
            continue
        match = _ATTEMPT_RE.match(field)
        if match:
            clause = replace(clause, max_attempt=int(match.group(1)))
            continue
        match = _KEY_RE.match(field)
        if match:
            clause = replace(clause, key_prefix=match.group(1))
            continue
        match = _SITE_RE.match(field)
        if match:
            site = match.group(1)
            if site not in FAULT_SITES:
                raise ValueError(
                    f"unknown fault site {site!r}; one of {FAULT_SITES}")
            clause = replace(clause, site=site)
            continue
        raise ValueError(
            f"bad fault clause field {field!r} in {text!r} (expected a "
            f"probability, 'attempt<N', 'key=PREFIX', or 'site=NAME')")
    return clause


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault clauses plus global injection knobs."""

    clauses: tuple[FaultClause, ...] = ()
    #: Seeds every probabilistic decision; two runs of the same plan
    #: over the same campaign inject identically.
    seed: int = 0
    #: How long a ``hang`` fault stalls (far past any sane deadline,
    #: so only the watchdog ends it).
    hang_s: float = 3600.0
    #: How long a ``slow_io`` fault stalls one operation.
    slow_s: float = 0.05

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse an ``--inject`` / ``$REPRO_FAULTS`` spec string."""
        clauses: list[FaultClause] = []
        seed, hang_s, slow_s = 0, 3600.0, 0.05
        for raw in spec.split(","):
            raw = raw.strip()
            if not raw:
                continue
            match = _GLOBAL_RE.match(raw)
            if match:
                name, value = match.groups()
                if name == "seed":
                    seed = int(value)
                elif name == "hang_s":
                    hang_s = float(value)
                else:
                    slow_s = float(value)
                continue
            clauses.append(_parse_clause(raw))
        if not clauses:
            raise ValueError(
                f"fault spec {spec!r} names no fault clauses "
                f"(kinds: {FAULT_KINDS})")
        return cls(clauses=tuple(clauses), seed=seed,
                   hang_s=hang_s, slow_s=slow_s)

    def spec(self) -> str:
        """Canonical spec string (round-trips through :meth:`parse`);
        how an activated plan propagates to worker processes."""
        parts = [f"seed={self.seed}"]
        if self.hang_s != 3600.0:
            parts.append(f"hang_s={self.hang_s:g}")
        if self.slow_s != 0.05:
            parts.append(f"slow_s={self.slow_s:g}")
        parts.extend(clause.spec() for clause in self.clauses)
        return ",".join(parts)

    def _roll(self, clause: FaultClause, site: str, key: str,
              attempt: int, call: int) -> bool:
        """The deterministic dice: uniform in [0, 1) from a digest."""
        if clause.probability >= 1.0:
            return True
        if clause.probability <= 0.0:
            return False
        token = (f"{self.seed}|{clause.kind}|{site}|{key}|"
                 f"{attempt}|{call}").encode("utf-8")
        digest = hashlib.sha256(token).digest()
        u = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return u < clause.probability

    def decide(self, site: str, key: str, attempt: int,
               call: int = 0,
               kinds: "tuple[str, ...] | None" = None) -> FaultClause | None:
        """The fault (if any) to inject at this exact execution point.

        ``call`` distinguishes repeated visits to one site within one
        attempt (the Nth plane GEMM, the Nth store write of a key) so
        each gets its own deterministic draw.  ``kinds`` restricts the
        decision to a subset of fault kinds -- the ``serve`` site hosts
        two physically distinct hooks (store reads see only ``slow_io``,
        the worker pool sees the process-breaking kinds), and each hook
        must skip the other's clauses rather than misfire them.  First
        matching clause that passes its dice wins.
        """
        for clause in self.clauses:
            if kinds is not None and clause.kind not in kinds:
                continue
            if clause.matches(site, key, attempt) \
                    and self._roll(clause, site, key, attempt, call):
                return clause
        return None

    def planned(self, site: str, keys: list[str],
                attempts: int = 1,
                kinds: "tuple[str, ...] | None" = None,
                ) -> Iterator[tuple[str, int, FaultClause]]:
        """Enumerate first-call injections for a key list (test oracle).

        Yields ``(key, attempt, clause)`` for every decision that fires
        at ``call=0`` -- what a chaos test compares observed retry and
        timeout counters against.  ``kinds`` mirrors :meth:`decide`'s
        filter so the oracle can model one hook of a shared site.
        """
        for key in keys:
            for attempt in range(attempts):
                clause = self.decide(site, key, attempt, kinds=kinds)
                if clause is not None:
                    yield key, attempt, clause
